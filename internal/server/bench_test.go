package server

// BenchmarkServerPropose measures the end-to-end HTTP hot path of the
// evaluation service: lease a batch of 64 pairs, then commit their labels.
// One benchmark op is one propose + one labels round trip. Tracked in
// BENCH_core.json via `make bench-json`.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/rng"
	"oasis/internal/session"
	"oasis/internal/trace"
	"oasis/internal/wal"
)

func benchPool(n int, seed uint64) (scores []float64, preds, truth []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	for i := 0; i < n; i++ {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
		truth[i] = r.Bernoulli(scores[i])
	}
	return scores, preds, truth
}

// BenchmarkServerProposeParallel measures the service's multi-worker hot
// path end to end — HTTP propose + labels round trips from 8 concurrent
// clients, each on its own session, against a sharded manager journaling to
// per-shard WAL lanes with fsync=always. One benchmark op is one
// propose?n=16 + one labels POST. At shards=1 every commit's fsync queues
// on one lane; at shards=8 the lanes sync concurrently. The metrics
// variant wires the full observability stack (registry, session + WAL
// instruments, /metrics routes) to keep its hot-path overhead honest —
// the PR6 acceptance gate holds it within 5% of metrics-off, and the
// traced variant (tracing at the default head-sample rate) is held to the
// same budget against shards=8 — an unsampled request must cost nothing
// but an atomic increment and two compares. Tracked in BENCH_core.json
// via `make bench-json` alongside the single-worker BenchmarkServerPropose
// baseline.
func BenchmarkServerProposeParallel(b *testing.B) {
	scores, preds, truth := benchPool(50_000, 5)
	for _, bc := range []struct {
		name    string
		shards  int
		metrics bool
		traced  bool
		binary  bool
	}{
		{"shards=1", 1, false, false, false},
		{"shards=8", 8, false, false, false},
		{"shards=8-metrics", 8, true, false, false},
		{"shards=8-traced", 8, false, true, false},
		// The binary-protocol variant of shards=8: same workload over OBP1
		// frames instead of JSON. The PR9 acceptance gate holds it to >=25%
		// better ns/op and >=50% fewer allocs/op than shards=8.
		{"shards=8-bin", 8, false, false, true},
	} {
		shards := bc.shards
		b.Run(bc.name, func(b *testing.B) {
			var reg *obs.Registry
			var sessMet *session.Metrics
			walOpts := wal.Options{Fsync: "always"}
			if bc.metrics {
				reg = obs.NewRegistry()
				sessMet = session.NewMetrics(reg, shards)
				walOpts.Metrics = wal.NewMetrics(reg)
			}
			mgr := session.NewManager(session.ManagerOptions{Shards: shards, Metrics: sessMet, Diag: quietDiag})
			j, err := wal.Open(b.TempDir(), mgr, walOpts)
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			srv := New(mgr)
			srv.SetJournal(j)
			if bc.traced {
				srv.EnableTracing(trace.NewCollector(trace.Options{}))
			}
			if bc.metrics {
				srv.EnableMetrics(reg)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			const nSessions = 8
			ids := make([]string, nSessions)
			for i := range ids {
				// Spread the sessions evenly across shards, whatever the count.
				for n := 0; ; n++ {
					id := fmt.Sprintf("pbench-%d-%d", i, n)
					if session.ShardOf(id, mgr.Shards()) == i%mgr.Shards() {
						ids[i] = id
						break
					}
				}
				if _, err := mgr.Create(session.Config{
					ID: ids[i], Scores: scores, Preds: preds, Calibrated: true,
					Options: oasis.Options{Strata: 30, Seed: uint64(9 + i)},
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(max(1, (nSessions+runtime.GOMAXPROCS(0)-1)/runtime.GOMAXPROCS(0)))
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := ids[int(next.Add(1)-1)%nSessions]
				url := fmt.Sprintf("%s/v1/sessions/%s", ts.URL, id)
				client := ts.Client()
				if bc.binary {
					benchBinaryWorker(b, pb, ts.Listener.Addr().String(), "/v1/sessions/"+id, truth)
					return
				}
				for pb.Next() {
					resp, err := client.Get(url + "/propose?n=16")
					if err != nil {
						b.Error(err)
						return
					}
					var pr ProposeResponse
					if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
						b.Error(err)
						return
					}
					resp.Body.Close()
					req := LabelsRequest{Labels: make([]Label, len(pr.Proposals))}
					for k, p := range pr.Proposals {
						req.Labels[k] = Label{Pair: p.Pair, Label: truth[p.Pair]}
					}
					body, err := json.Marshal(req)
					if err != nil {
						b.Error(err)
						return
					}
					resp, err = client.Post(url+"/labels", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					var lr LabelsResponse
					if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
						b.Error(err)
						return
					}
					resp.Body.Close()
					if lr.Committed != len(req.Labels) {
						b.Errorf("committed %d of %d", lr.Committed, len(req.Labels))
						return
					}
				}
			})
		})
	}
}

// benchBinaryWorker is one RunParallel worker's loop over the binary
// protocol, issued over its own persistent connection with a minimal
// hand-rolled HTTP/1.1 client — fixed request bytes, reused buffers and
// structs — the shape a hot binary client takes when the protocol, not the
// client library, should be the cost. The JSON variants keep net/http's
// stock client: marshal/unmarshal per call is intrinsic to that protocol's
// ergonomics, per-request buffer reuse is intrinsic to this one's.
func benchBinaryWorker(b *testing.B, pb *testing.PB, addr, path string, truth []bool) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Error(err)
		return
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 32<<10)

	proposeReq := []byte("GET " + path + "/propose?n=16 HTTP/1.1\r\nHost: bench\r\nAccept: " +
		ContentTypeBinary + "\r\n\r\n")
	labelsPrefix := "POST " + path + "/labels HTTP/1.1\r\nHost: bench\r\nAccept: " +
		ContentTypeBinary + "\r\nContent-Type: " + ContentTypeBinary + "\r\nContent-Length: "

	var out, frame, body []byte
	var pr ProposeResponse
	var req LabelsRequest
	var lresp LabelsResponse

	// readResponse parses one keep-alive response: status code, the
	// Content-Length header (writeBinary always sets one, so the body is
	// never chunked), then exactly that many body bytes into the reused
	// buffer.
	readResponse := func() (status int, ok bool) {
		line, err := br.ReadSlice('\n')
		if err != nil || len(line) < 12 {
			b.Errorf("read status line: %v %q", err, line)
			return 0, false
		}
		status = int(line[9]-'0')*100 + int(line[10]-'0')*10 + int(line[11]-'0')
		clen := -1
		for {
			line, err = br.ReadSlice('\n')
			if err != nil {
				b.Error(err)
				return 0, false
			}
			if len(line) <= 2 { // blank line ends the header block
				break
			}
			const h = "Content-Length: "
			if len(line) > len(h) && string(line[:len(h)]) == h {
				n := 0
				for _, c := range line[len(h):] {
					if c < '0' || c > '9' {
						break
					}
					n = n*10 + int(c-'0')
				}
				clen = n
			}
		}
		if clen < 0 {
			b.Error("response without Content-Length")
			return 0, false
		}
		if cap(body) < clen {
			body = make([]byte, clen)
		}
		body = body[:clen]
		if _, err := io.ReadFull(br, body); err != nil {
			b.Error(err)
			return 0, false
		}
		return status, true
	}

	for pb.Next() {
		if _, err := conn.Write(proposeReq); err != nil {
			b.Error(err)
			return
		}
		status, ok := readResponse()
		if !ok {
			return
		}
		if status != http.StatusOK {
			b.Errorf("propose: status %d: %s", status, body)
			return
		}
		if err := DecodeProposeResponse(body, &pr); err != nil {
			b.Error(err)
			return
		}
		req.Labels = req.Labels[:0]
		for _, p := range pr.Proposals {
			req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: truth[p.Pair]})
		}
		frame = AppendLabelsRequest(frame[:0], &req)
		out = append(out[:0], labelsPrefix...)
		out = strconv.AppendInt(out, int64(len(frame)), 10)
		out = append(out, "\r\n\r\n"...)
		out = append(out, frame...)
		if _, err := conn.Write(out); err != nil {
			b.Error(err)
			return
		}
		if status, ok = readResponse(); !ok {
			return
		}
		if status != http.StatusOK {
			b.Errorf("labels: status %d: %s", status, body)
			return
		}
		if err := DecodeLabelsResponse(body, &lresp); err != nil {
			b.Error(err)
			return
		}
		if lresp.Committed != len(req.Labels) {
			b.Errorf("committed %d of %d", lresp.Committed, len(req.Labels))
			return
		}
	}
}

func BenchmarkServerPropose(b *testing.B) {
	scores, preds, truth := benchPool(200_000, 5)
	newSession := func(ts *httptest.Server, id string) {
		b.Helper()
		cfg := session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 30, Seed: 9},
		}
		body, err := json.Marshal(cfg)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("create session: status %d", resp.StatusCode)
		}
	}

	ts := httptest.NewServer(New(session.NewManager(session.ManagerOptions{Diag: quietDiag})).Handler())
	defer ts.Close()
	sid := 0
	newSession(ts, "bench-0")
	committed := 0

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if committed > 150_000 {
			b.StopTimer()
			sid++
			newSession(ts, fmt.Sprintf("bench-%d", sid))
			committed = 0
			b.StartTimer()
		}
		url := fmt.Sprintf("%s/v1/sessions/bench-%d", ts.URL, sid)
		resp, err := http.Get(url + "/propose?n=64")
		if err != nil {
			b.Fatal(err)
		}
		var pr ProposeResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		req := LabelsRequest{Labels: make([]Label, len(pr.Proposals))}
		for j, p := range pr.Proposals {
			req.Labels[j] = Label{Pair: p.Pair, Label: truth[p.Pair]}
		}
		body, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		resp, err = http.Post(url+"/labels", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var lr LabelsResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		committed += lr.Committed
	}
}

// quietDiag silences health-transition logging in benchmarks: the default
// logger writes into the benchmark output stream and corrupts the
// machine-parsed result lines.
var quietDiag = session.DiagOptions{Logf: func(string, ...any) {}}
