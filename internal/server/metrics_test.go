package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/session"
	"oasis/internal/wal"
)

// --- strict Prometheus text-format validator ---------------------------

type metricFamily struct {
	help    string
	typ     string
	samples map[string]float64 // "name{labels}" -> value, insertion-checked for dups
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parseExposition parses and validates Prometheus text format 0.0.4:
// every family has HELP and TYPE before its samples, label values are
// properly quoted and escaped, histogram buckets are cumulative and
// consistent with _sum/_count. It fails the test on any violation.
func parseExposition(t *testing.T, text string) map[string]*metricFamily {
	t.Helper()
	fams := make(map[string]*metricFamily)
	var current string // family whose block we are inside
	for ln, line := range strings.Split(text, "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[0] != "#" || (parts[1] != "HELP" && parts[1] != "TYPE") {
				fail("malformed comment line")
			}
			name := parts[2]
			if !metricNameRE.MatchString(name) {
				fail("bad metric name %q", name)
			}
			switch parts[1] {
			case "HELP":
				if _, dup := fams[name]; dup {
					fail("second HELP for %q", name)
				}
				fams[name] = &metricFamily{help: parts[3], samples: make(map[string]float64)}
				current = name
			case "TYPE":
				f, ok := fams[name]
				if !ok {
					fail("TYPE before HELP for %q", name)
				}
				if f.typ != "" {
					fail("second TYPE for %q", name)
				}
				if len(f.samples) > 0 {
					fail("TYPE after samples for %q", name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
					f.typ = parts[3]
				default:
					fail("bad type %q", parts[3])
				}
			}
			continue
		}
		name, labels, value := parseSampleLine(t, ln+1, line)
		base := name
		fam, ok := fams[base]
		if !ok {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suffix) {
					if f2, ok2 := fams[strings.TrimSuffix(name, suffix)]; ok2 && f2.typ == "histogram" {
						base, fam, ok = strings.TrimSuffix(name, suffix), f2, true
						break
					}
				}
			}
		}
		if !ok {
			fail("sample for family without HELP/TYPE")
		}
		if fam.typ == "" {
			fail("sample before TYPE for %q", base)
		}
		if fam.typ == "histogram" && name == base {
			fail("bare sample %q for histogram family", name)
		}
		if fam.typ != "histogram" && name != base {
			fail("suffixed sample %q for %s family", name, fam.typ)
		}
		if base != current {
			// Families must be contiguous blocks (our writer sorts them).
			if len(fams[base].samples) > 0 {
				fail("family %q split across blocks", base)
			}
			current = base
		}
		if fam.typ == "counter" && (value < 0 || math.IsNaN(value)) {
			fail("counter value %v", value)
		}
		key := name + labels
		if _, dup := fam.samples[key]; dup {
			fail("duplicate sample %q", key)
		}
		fam.samples[key] = value
	}
	for name, f := range fams {
		if f.typ == "" {
			t.Fatalf("family %q has HELP but no TYPE", name)
		}
		if f.typ == "histogram" {
			validateHistogram(t, name, f)
		}
	}
	return fams
}

// parseSampleLine splits "name{labels} value", validating escaping.
func parseSampleLine(t *testing.T, ln int, line string) (name, labels string, value float64) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("line %d %q: %s", ln, line, fmt.Sprintf(format, args...))
	}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		rest = rest[brace:]
		// Walk the label block honouring escapes.
		if rest[0] != '{' {
			fail("bad label block")
		}
		i := 1
		for {
			if i >= len(rest) {
				fail("unterminated label block")
			}
			if rest[i] == '}' {
				break
			}
			eq := strings.IndexByte(rest[i:], '=')
			if eq < 0 {
				fail("label without =")
			}
			lname := rest[i : i+eq]
			if !labelNameRE.MatchString(lname) {
				fail("bad label name %q", lname)
			}
			i += eq + 1
			if i >= len(rest) || rest[i] != '"' {
				fail("unquoted label value")
			}
			i++
			for i < len(rest) && rest[i] != '"' {
				if rest[i] == '\\' {
					if i+1 >= len(rest) {
						fail("dangling escape")
					}
					switch rest[i+1] {
					case '\\', '"', 'n':
					default:
						fail("bad escape \\%c", rest[i+1])
					}
					i++
				} else if rest[i] == '\n' {
					fail("raw newline in label value")
				}
				i++
			}
			if i >= len(rest) {
				fail("unterminated label value")
			}
			i++ // closing quote
			if i < len(rest) && rest[i] == ',' {
				i++
			}
		}
		labels = rest[:i+1]
		rest = rest[i+1:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			fail("no value")
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !metricNameRE.MatchString(name) {
		fail("bad metric name %q", name)
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := parseValue(rest)
	if err != nil {
		fail("bad value %q: %v", rest, err)
	}
	return name, labels, v
}

func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validateHistogram checks cumulative monotone buckets, the +Inf bucket,
// and _sum/_count consistency for every label combination of one family.
func validateHistogram(t *testing.T, name string, f *metricFamily) {
	t.Helper()
	type series struct {
		les    []float64
		counts map[float64]float64
		sum    *float64
		count  *float64
	}
	groups := make(map[string]*series) // non-le label signature
	stripLe := func(labels string) (rest string, le float64, hasLe bool) {
		if labels == "" {
			return "", 0, false
		}
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		var kept []string
		for _, part := range splitLabels(inner) {
			if strings.HasPrefix(part, `le="`) {
				v, err := parseValue(strings.TrimSuffix(strings.TrimPrefix(part, `le="`), `"`))
				if err != nil {
					t.Fatalf("%s: bad le in %q: %v", name, labels, err)
				}
				le, hasLe = v, true
				continue
			}
			kept = append(kept, part)
		}
		sort.Strings(kept)
		return strings.Join(kept, ","), le, hasLe
	}
	group := func(sig string) *series {
		g, ok := groups[sig]
		if !ok {
			g = &series{counts: make(map[float64]float64)}
			groups[sig] = g
		}
		return g
	}
	for key, v := range f.samples {
		brace := strings.IndexByte(key, '{')
		sname, labels := key, ""
		if brace >= 0 {
			sname, labels = key[:brace], key[brace:]
		}
		v := v
		switch {
		case strings.HasSuffix(sname, "_bucket"):
			sig, le, hasLe := stripLe(labels)
			if !hasLe {
				t.Fatalf("%s: bucket without le label: %q", name, key)
			}
			g := group(sig)
			g.les = append(g.les, le)
			g.counts[le] = v
		case strings.HasSuffix(sname, "_sum"):
			sig, _, _ := stripLe(labels)
			group(sig).sum = &v
		case strings.HasSuffix(sname, "_count"):
			sig, _, _ := stripLe(labels)
			group(sig).count = &v
		}
	}
	for sig, g := range groups {
		if g.sum == nil || g.count == nil || len(g.les) == 0 {
			t.Fatalf("%s{%s}: histogram missing _sum, _count or buckets", name, sig)
		}
		sort.Float64s(g.les)
		prev := -1.0
		for i, le := range g.les {
			if i > 0 && le == g.les[i-1] {
				t.Fatalf("%s{%s}: duplicate le=%v", name, sig, le)
			}
			if g.counts[le] < prev {
				t.Fatalf("%s{%s}: bucket le=%v count %v below previous %v", name, sig, le, g.counts[le], prev)
			}
			prev = g.counts[le]
		}
		inf := g.les[len(g.les)-1]
		if !math.IsInf(inf, 1) {
			t.Fatalf("%s{%s}: no +Inf bucket", name, sig)
		}
		if g.counts[inf] != *g.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != _count %v", name, sig, g.counts[inf], *g.count)
		}
		if *g.count > 0 && math.IsNaN(*g.sum) {
			t.Fatalf("%s{%s}: NaN _sum", name, sig)
		}
	}
}

// splitLabels splits `a="x",b="y"` on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\\' && inQuote:
			i++
		case s[i] == '"':
			inQuote = !inQuote
		case s[i] == ',' && !inQuote:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// sumFamily sums every sample of a family whose key contains all the given
// substrings (crude label matching, sufficient for the tests).
func sumFamily(f *metricFamily, contains ...string) float64 {
	var sum float64
	for key, v := range f.samples {
		ok := true
		for _, c := range contains {
			if !strings.Contains(key, c) {
				ok = false
				break
			}
		}
		if ok {
			sum += v
		}
	}
	return sum
}

// --- harness -----------------------------------------------------------

// newMetricsTestServer wires a fully observable server: sharded manager
// with session metrics, WAL with fsync=always and latency metrics, and
// the /metrics endpoint.
func newMetricsTestServer(t *testing.T, shards int) (*httptest.Server, *session.Manager) {
	t.Helper()
	reg := obs.NewRegistry()
	mgr := session.NewManager(session.ManagerOptions{
		Shards:  shards,
		Metrics: session.NewMetrics(reg, shards),
	})
	j, err := wal.Open(t.TempDir(), mgr, wal.Options{Fsync: "always", Metrics: wal.NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	srv := New(mgr)
	srv.SetJournal(j)
	srv.SetVersion("test-1.2.3")
	srv.EnableMetrics(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, mgr
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// runWorkload creates a session, proposes and commits labels via HTTP,
// returning the committed count.
func runWorkload(t *testing.T, c *client, id string, rounds, batch int) int {
	t.Helper()
	scores, preds, truth := benchPool(500, 11)
	cfg := session.Config{ID: id, Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 10, Seed: 4}}
	if code := c.do("POST", "/v1/sessions", cfg, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	committed := 0
	path := "/v1/sessions/" + url.PathEscape(id)
	for r := 0; r < rounds; r++ {
		var pr ProposeResponse
		if code := c.do("GET", fmt.Sprintf("%s/propose?n=%d", path, batch), nil, &pr); code != http.StatusOK {
			t.Fatalf("propose: status %d", code)
		}
		req := LabelsRequest{}
		for _, p := range pr.Proposals {
			req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: truth[p.Pair]})
		}
		var lr LabelsResponse
		if code := c.do("POST", path+"/labels", req, &lr); code != http.StatusOK {
			t.Fatalf("labels: status %d", code)
		}
		committed += lr.Committed
	}
	return committed
}

// --- tests -------------------------------------------------------------

func TestMetricsExposition(t *testing.T) {
	ts, _ := newMetricsTestServer(t, 4)
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	// One OASIS session with an ID that needs label escaping, one passive
	// session that gets deleted before the scrape.
	weird := `we"ird\session`
	committed := runWorkload(t, c, weird, 4, 8)
	runWorkload(t, c, "doomed", 2, 4)
	if code := c.do("DELETE", "/v1/sessions/doomed", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}

	fams := parseExposition(t, scrape(t, ts))

	// Instrument-backed families.
	if got := sumFamily(fams["oasis_session_creates_total"]); got != 2 {
		t.Errorf("creates = %v, want 2", got)
	}
	if got := sumFamily(fams["oasis_session_deletes_total"]); got != 1 {
		t.Errorf("deletes = %v, want 1", got)
	}
	if got := sumFamily(fams["oasis_session_labels_committed_total"]); got < float64(committed) {
		t.Errorf("labels committed %v < workload %d", got, committed)
	}
	if got := sumFamily(fams["oasis_session_proposed_pairs_total"]); got < float64(committed) {
		t.Errorf("proposed pairs %v < committed %d", got, committed)
	}
	for _, h := range []string{"oasis_session_create_seconds", "oasis_session_propose_seconds",
		"oasis_session_commit_seconds", "oasis_wal_append_seconds", "oasis_wal_fsync_seconds",
		"oasis_http_request_seconds"} {
		f, ok := fams[h]
		if !ok {
			t.Fatalf("missing histogram %s", h)
		}
		if got := sumFamily(f, "_count"); got == 0 {
			t.Errorf("%s observed nothing", h)
		}
	}
	if got := sumFamily(fams["oasis_http_requests_total"], `code="2xx"`); got == 0 {
		t.Error("no 2xx requests counted")
	}

	// Collector-backed families.
	if got := sumFamily(fams["oasis_sessions"]); got != 1 {
		t.Errorf("oasis_sessions = %v, want 1 after delete", got)
	}
	if got := sumFamily(fams["oasis_wal_records_appended_total"]); got == 0 {
		t.Error("wal records appended = 0")
	}
	if got := sumFamily(fams["oasis_build_info"], `version="test-1.2.3"`); got != 1 {
		t.Error("build info sample missing")
	}

	// Per-session sampler health for the surviving (weird-ID) session,
	// label escaping included.
	esc := `session="we\"ird\\session"`
	for _, g := range []string{"oasis_sampler_estimate", "oasis_sampler_asymptotic_variance",
		"oasis_sampler_ess", "oasis_sampler_ess_ratio", "oasis_sampler_labels_committed"} {
		f, ok := fams[g]
		if !ok {
			t.Fatalf("missing sampler gauge %s", g)
		}
		found := false
		for key := range f.samples {
			if strings.Contains(key, esc) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s has no sample for escaped session ID (have %v)", g, keysOf(f.samples))
		}
	}
	ratio := sumFamily(fams["oasis_sampler_ess_ratio"], esc)
	if !(ratio > 0 && ratio <= 1.0000001) {
		t.Errorf("ESS ratio = %v, want in (0,1]", ratio)
	}
	if got := sumFamily(fams["oasis_sampler_labels_committed"], esc); got != float64(committed) {
		t.Errorf("sampler labels committed = %v, want %d", got, committed)
	}
}

func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestMetricsStatsCrossCheck(t *testing.T) {
	ts, mgr := newMetricsTestServer(t, 2)
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	total := 0
	for i := 0; i < 3; i++ {
		total += runWorkload(t, c, fmt.Sprintf("cross-%d", i), 3, 8)
	}

	var stats StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	fams := parseExposition(t, scrape(t, ts))

	if stats.LabelsCommitted != total {
		t.Errorf("stats labelsCommitted = %d, want %d", stats.LabelsCommitted, total)
	}
	if got := sumFamily(fams["oasis_session_labels_committed_total"]); got != float64(total) {
		t.Errorf("scraped labels committed = %v, stats says %d", got, stats.LabelsCommitted)
	}
	if got := sumFamily(fams["oasis_sessions"]); got != float64(stats.Sessions) {
		t.Errorf("scraped sessions = %v, stats says %d", got, stats.Sessions)
	}
	if got := sumFamily(fams["oasis_sampler_labels_committed"]); got != float64(total) {
		t.Errorf("per-session gauges sum to %v, want %d", got, total)
	}
	if stats.WAL == nil {
		t.Fatal("stats has no WAL block")
	}
	if got := sumFamily(fams["oasis_wal_records_appended_total"]); got != float64(stats.WAL.RecordsAppended) {
		t.Errorf("scraped wal records = %v, stats says %d", got, stats.WAL.RecordsAppended)
	}
	if got := sumFamily(fams["oasis_wal_syncs_total"]); got != float64(stats.WAL.Syncs) {
		t.Errorf("scraped wal syncs = %v, stats says %d", got, stats.WAL.Syncs)
	}
	// The hot-path fsync histogram and the lane counters are independent
	// code paths; they must agree on the sync count.
	if got := sumFamily(fams["oasis_wal_fsync_seconds"], "_count"); got != float64(stats.WAL.Syncs) {
		t.Errorf("fsync histogram count = %v, lane counters say %d", got, stats.WAL.Syncs)
	}
	if stats.UptimeSeconds <= 0 {
		t.Error("uptime not positive")
	}
	if stats.Runtime.Goroutines <= 0 || stats.Runtime.GoVersion == "" {
		t.Errorf("runtime block not populated: %+v", stats.Runtime)
	}
	if stats.Version != "test-1.2.3" {
		t.Errorf("version = %q", stats.Version)
	}
	if mgr.Len() != stats.Sessions {
		t.Errorf("manager has %d sessions, stats says %d", mgr.Len(), stats.Sessions)
	}
}

// TestMetricsScrapeStress hammers propose/commit from several workers
// while scraping /metrics, /v1/stats and /healthz concurrently; run with
// -race it is the detector for scrape-vs-hot-path races.
func TestMetricsScrapeStress(t *testing.T) {
	ts, _ := newMetricsTestServer(t, 4)
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	scores, preds, truth := benchPool(2000, 17)
	const workers = 4
	for i := 0; i < workers; i++ {
		cfg := session.Config{ID: fmt.Sprintf("stress-%d", i), Scores: scores, Preds: preds,
			Calibrated: true, Options: oasis.Options{Strata: 10, Seed: uint64(i)}}
		if code := c.do("POST", "/v1/sessions", cfg, nil); code != http.StatusCreated {
			t.Fatalf("create: status %d", code)
		}
	}
	deadline := time.Now().Add(600 * time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := fmt.Sprintf("/v1/sessions/stress-%d", i)
			for time.Now().Before(deadline) {
				var pr ProposeResponse
				if code := c.do("GET", path+"/propose?n=8", nil, &pr); code != http.StatusOK {
					t.Errorf("propose: status %d", code)
					return
				}
				req := LabelsRequest{}
				for _, p := range pr.Proposals {
					req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: truth[p.Pair]})
				}
				var lr LabelsResponse
				if code := c.do("POST", path+"/labels", req, &lr); code != http.StatusOK {
					t.Errorf("labels: status %d", code)
					return
				}
			}
		}(i)
	}
	for _, endpoint := range []string{"/metrics", "/v1/stats", "/healthz"} {
		wg.Add(1)
		go func(endpoint string) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := ts.Client().Get(ts.URL + endpoint)
				if err != nil {
					t.Errorf("%s: %v", endpoint, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(endpoint)
	}
	wg.Wait()
	// The exposition must still be valid after the storm.
	parseExposition(t, scrape(t, ts))
}
