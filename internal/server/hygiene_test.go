package server

// Regression tests for the request-handling bug sweep: the propose batch-size
// cap, strict JSON body decoding (trailing garbage, mismatched Content-Type),
// and the client-disconnect disposition.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/session"
)

// TestMaxProposeCap pins the ?n= bound: a batch over the cap is a 400, not
// an attempt to lease a billion pairs, and the cap is adjustable.
func TestMaxProposeCap(t *testing.T) {
	ts, srv := newBinTestServer(t, "cap", 0)
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	if code := c.do("GET", "/v1/sessions/cap/propose?n=1000000000", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("n=1e9: status %d, want 400", code)
	}
	if code := c.do("GET", fmt.Sprintf("/v1/sessions/cap/propose?n=%d", DefaultMaxPropose+1), nil, nil); code != http.StatusBadRequest {
		t.Fatalf("n=cap+1: status %d, want 400", code)
	}
	var pr ProposeResponse
	if code := c.do("GET", "/v1/sessions/cap/propose?n=4", nil, &pr); code != http.StatusOK || len(pr.Proposals) != 4 {
		t.Fatalf("n=4: status %d, %d proposals", code, len(pr.Proposals))
	}

	srv.SetMaxPropose(2)
	if code := c.do("GET", "/v1/sessions/cap/propose?n=3", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("n=3 with cap 2: status %d, want 400", code)
	}
	if code := c.do("GET", "/v1/sessions/cap/propose?n=2", nil, &pr); code != http.StatusOK {
		t.Fatalf("n=2 with cap 2: status %d", code)
	}
}

// TestStrictJSONBody pins decodeJSON's hygiene: trailing garbage after the
// JSON value is a 400 (previously silently ignored, letting a client
// concatenate bodies undetected), and a body declared as anything other
// than JSON or the binary protocol is a 415.
func TestStrictJSONBody(t *testing.T) {
	ts, _ := newBinTestServer(t, "strict", 0)

	post := func(body, contentType string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/strict/labels", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post(`{"labels":[]}{"evil":1}`, "application/json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing garbage: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"labels":[]} extra`, "application/json"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing text: status %d, want 400", resp.StatusCode)
	}
	if resp := post(`{"labels":[]}`, "text/xml"); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("xml content type: status %d, want 415", resp.StatusCode)
	}
	// JSON with parameters, and an absent Content-Type, both stay accepted —
	// the second keeps plain curl and the existing test client working.
	if resp := post(`{"labels":[]}`, "application/json; charset=utf-8"); resp.StatusCode != http.StatusOK {
		t.Errorf("json with charset: status %d, want 200", resp.StatusCode)
	}
	if resp := post(`{"labels":[]}`, ""); resp.StatusCode != http.StatusOK {
		t.Errorf("no content type: status %d, want 200", resp.StatusCode)
	}
}

// TestClientDisconnectDisposition pins the 499 path: a request whose context
// is already canceled (the client hung up) must answer with
// StatusClientClosedRequest and be counted under code="disconnect" — not in
// the 4xx class, so a hang-up storm cannot masquerade as a client-error
// spike.
func TestClientDisconnectDisposition(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	preds := []bool{true, true, false, false}
	mgr := session.NewManager(session.ManagerOptions{})
	srv := New(mgr)
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	if _, err := mgr.Create(session.Config{
		ID: "gone", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 2, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	ts := httptest.NewServer(h)
	defer ts.Close()

	counter := func(code string) float64 {
		fams := parseExposition(t, scrape(t, ts))
		return sumFamily(fams["oasis_http_requests_total"],
			`route="GET /v1/sessions/{id}/propose"`, `code="`+code+`"`)
	}
	fourxx, disc := counter("4xx"), counter("disconnect")

	req := httptest.NewRequest("GET", "/v1/sessions/gone/propose?n=2", nil)
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req.WithContext(ctx))

	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled propose: status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}
	if got := counter("4xx"); got != fourxx {
		t.Errorf("4xx counter moved %v -> %v on a disconnect", fourxx, got)
	}
	if got := counter("disconnect"); got != disc+1 {
		t.Errorf("disconnect counter %v -> %v, want +1", disc, got)
	}

	// Same for a canceled commit.
	body := strings.NewReader(`{"labels":[{"pair":0,"label":true}]}`)
	req = httptest.NewRequest("POST", "/v1/sessions/gone/labels", body)
	ctx, cancel = context.WithCancel(req.Context())
	cancel()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("canceled commit: status %d, want %d: %s", rec.Code, StatusClientClosedRequest, rec.Body)
	}

	// A live request on the same routes still works: the ctx check sits
	// before any state change, so nothing leaked from the canceled calls.
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	var pr ProposeResponse
	if code := c.do("GET", "/v1/sessions/gone/propose?n=2", nil, &pr); code != http.StatusOK || len(pr.Proposals) != 2 {
		t.Fatalf("live propose after disconnects: status %d, %d proposals", code, len(pr.Proposals))
	}
	var st session.Status
	if code := c.do("GET", "/v1/sessions/gone", nil, &st); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if st.PendingProposals != 2 {
		t.Fatalf("pending proposals %d, want 2 (canceled propose must not leak leases)", st.PendingProposals)
	}
}
