// Package server exposes the session subsystem as a JSON-over-HTTP
// evaluation service:
//
//	POST   /v1/sessions                  create a session (body: session.Config)
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's status
//	GET    /v1/sessions/{id}/estimate    current F̂ and accounting
//	GET    /v1/sessions/{id}/propose?n=  lease a batch of pairs to label
//	POST   /v1/sessions/{id}/labels      commit labels (body: {labels: [...]})
//	DELETE /v1/sessions/{id}             drop the session
//	GET    /healthz                      liveness for load balancers (503 once the WAL fail-stops)
//	GET    /v1/stats                     service totals + WAL counters for ops
//
// The propose/commit cycle is the service form of Algorithm 3: workers pull
// batches of record pairs drawn from the current instrumental distribution,
// label them out-of-band (a crowd, an expert queue) and push answers back;
// the server folds each answer into the session's Beta posteriors and AIS
// estimate. Proposals carry leases — an unanswered pair returns to the
// proposable set after the session's lease TTL.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"oasis/internal/session"
	"oasis/internal/wal"
)

// Server is the HTTP front-end over a session.Manager.
type Server struct {
	mgr *session.Manager
	jrn *wal.Journal
}

// New wraps a manager.
func New(mgr *session.Manager) *Server { return &Server{mgr: mgr} }

// SetJournal wires the write-ahead log into the ops endpoints: /healthz
// degrades to 503 once the journal enters its sticky failure state, and
// /v1/stats reports its counters.
func (s *Server) SetJournal(j *wal.Journal) { s.jrn = j }

// Manager returns the underlying session manager (e.g. for snapshotting at
// shutdown).
func (s *Server) Manager() *session.Manager { return s.mgr }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.createSession)
	mux.HandleFunc("GET /v1/sessions", s.listSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.getSession)
	mux.HandleFunc("GET /v1/sessions/{id}/estimate", s.getSession)
	mux.HandleFunc("GET /v1/sessions/{id}/propose", s.propose)
	mux.HandleFunc("POST /v1/sessions/{id}/labels", s.commitLabels)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.deleteSession)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /v1/stats", s.stats)
	return mux
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "degraded"
	Error  string `json:"error,omitempty"`
}

// healthz answers load-balancer probes: 200 while the service can
// acknowledge writes, 503 once the WAL has fail-stopped.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	if s.jrn != nil {
		if err := s.jrn.Err(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "degraded", Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// ShardStats is one session-manager shard's slice of the totals. With a WAL
// attached, shard i's journal lane counters appear as lane i in the WAL
// block.
type ShardStats struct {
	Shard            int `json:"shard"`
	Sessions         int `json:"sessions"`
	LabelsCommitted  int `json:"labelsCommitted"`
	PendingProposals int `json:"pendingProposals"`
}

// StatsResponse is the body of GET /v1/stats: service-wide totals, the
// per-shard breakdown, plus the WAL's segment/sync counters (aggregate and
// per lane) when durability is enabled.
type StatsResponse struct {
	Sessions         int          `json:"sessions"`
	LabelsCommitted  int          `json:"labelsCommitted"`
	PendingProposals int          `json:"pendingProposals"`
	Shards           []ShardStats `json:"shards"`
	WAL              *wal.Stats   `json:"wal,omitempty"`
}

// stats aggregates shard by shard: each shard's sessions are snapshotted
// under that shard's lock alone, so a stats poll never stops the world.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Shards: make([]ShardStats, s.mgr.Shards())}
	for shard := 0; shard < s.mgr.Shards(); shard++ {
		ss := ShardStats{Shard: shard}
		for _, st := range s.mgr.ListShard(shard) {
			ss.Sessions++
			ss.LabelsCommitted += st.LabelsCommitted
			ss.PendingProposals += st.PendingProposals
		}
		resp.Shards[shard] = ss
		resp.Sessions += ss.Sessions
		resp.LabelsCommitted += ss.LabelsCommitted
		resp.PendingProposals += ss.PendingProposals
	}
	if s.jrn != nil {
		st := s.jrn.Stats()
		resp.WAL = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// lookup resolves {id} to a session or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return nil, false
	}
	return sess, true
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var cfg session.Config
	if err := json.NewDecoder(r.Body).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	sess, err := s.mgr.Create(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Status())
}

func (s *Server) listSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sessions []session.Status `json:"sessions"`
	}{Sessions: s.mgr.List()})
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

// ProposeResponse is the body of GET .../propose.
type ProposeResponse struct {
	Proposals []session.Proposal `json:"proposals"`
	// Exhausted reports that the session's label budget is fully committed;
	// polling workers should stop.
	Exhausted bool `json:"exhausted,omitempty"`
}

func (s *Server) propose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	n := 1
	if q := r.URL.Query().Get("n"); q != "" {
		var err error
		if n, err = strconv.Atoi(q); err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
	}
	props, err := sess.Propose(n)
	if errors.Is(err, session.ErrBudgetExhausted) {
		writeJSON(w, http.StatusOK, ProposeResponse{Proposals: []session.Proposal{}, Exhausted: true})
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, ProposeResponse{Proposals: props})
}

// Label is one crowd answer: the pool pair and its Boolean label.
type Label struct {
	Pair  int  `json:"pair"`
	Label bool `json:"label"`
}

// LabelsRequest is the body of POST .../labels.
type LabelsRequest struct {
	Labels []Label `json:"labels"`
}

// LabelResult reports one answer's fate: "ok" (a fresh label, committed),
// "duplicate" (the pair was already labelled; the re-answer is ignored) or
// "expired" (no live lease; the pair is proposable again).
type LabelResult struct {
	Pair   int    `json:"pair"`
	Status string `json:"status"`
}

// LabelsResponse is the body of the labels endpoint's reply; Committed
// counts only fresh labels ("ok" results).
type LabelsResponse struct {
	Results   []LabelResult `json:"results"`
	Committed int           `json:"committed"`
}

func (s *Server) commitLabels(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req LabelsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad labels: %v", err)
		return
	}
	pairs := make([]int, len(req.Labels))
	labels := make([]bool, len(req.Labels))
	for i, l := range req.Labels {
		pairs[i] = l.Pair
		labels[i] = l.Label
	}
	// The commit is acknowledged only after the session's journal append
	// succeeded (CommitBatch returns an error otherwise): a 200 here means
	// the labels are as durable as the configured fsync policy makes them.
	results, err := sess.CommitBatch(pairs, labels)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := LabelsResponse{Results: make([]LabelResult, len(results))}
	for i, cr := range results {
		res := LabelResult{Pair: pairs[i]}
		switch cr {
		case session.Committed:
			res.Status = "ok"
			resp.Committed++
		case session.Duplicate:
			res.Status = "duplicate"
		case session.Expired:
			res.Status = "expired"
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ShutdownGrace is how long Serve waits for in-flight requests on shutdown.
const ShutdownGrace = 5 * time.Second

// Serve runs the service on addr until ctx is cancelled, then shuts down
// gracefully (in-flight requests get ShutdownGrace to finish). If ready is
// non-nil it receives the listener's resolved address once the server is
// accepting connections (useful with ":0").
func (s *Server) Serve(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}
