// Package server exposes the session subsystem as a JSON-over-HTTP
// evaluation service:
//
//	POST   /v1/sessions                  create a session (body: session.Config)
//	GET    /v1/sessions                  list session statuses
//	GET    /v1/sessions/{id}             one session's status
//	GET    /v1/sessions/{id}/estimate    current F̂ and accounting
//	GET    /v1/sessions/{id}/diagnostics convergence diagnostics: downsampled series,
//	                                     per-stratum health, degeneracy alarm state
//	GET    /v1/sessions/{id}/propose?n=  lease a batch of pairs to label
//	POST   /v1/sessions/{id}/labels      commit labels (body: {labels: [...]})
//	DELETE /v1/sessions/{id}             drop the session
//	POST   /v1/pools                     upload a pool once (JSON {scores, preds} or
//	                                     binary columnar, Content-Type octet-stream);
//	                                     returns its content-addressed poolId
//	GET    /v1/pools                     list stored pools (size, refcount, residency)
//	GET    /v1/pools/{id}                one pool's info
//	DELETE /v1/pools/{id}                drop an unreferenced pool (409 while in use)
//	GET    /healthz                      liveness for load balancers (503 once the WAL fail-stops)
//	GET    /v1/stats                     service totals + WAL and pool-store counters for ops
//	GET    /debug/traces                 retained request traces, newest first (with tracing enabled)
//	GET    /debug/traces/{id}            one trace's full span timeline, by 32-hex trace ID
//	GET    /debug/dashboard              zero-dependency HTML convergence dashboard with
//	                                     inline SVG sparklines per live session
//
// Pools uploaded through /v1/pools are shared: any number of sessions may be
// created with {"poolId": ...} instead of inline scores, and they all sample
// against one read-only in-memory copy. Every request body is bounded by the
// server's max-body limit (413 beyond it).
//
// The propose/commit cycle is the service form of Algorithm 3: workers pull
// batches of record pairs drawn from the current instrumental distribution,
// label them out-of-band (a crowd, an expert queue) and push answers back;
// the server folds each answer into the session's Beta posteriors and AIS
// estimate. Proposals carry leases — an unanswered pair returns to the
// proposable set after the session's lease TTL.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"oasis/internal/diag"
	"oasis/internal/poolstore"
	"oasis/internal/session"
	"oasis/internal/trace"
	"oasis/internal/wal"
)

// DefaultMaxBodyBytes bounds request bodies when SetMaxBodyBytes is not
// called: large enough for a multi-million-pair pool upload (a 1M-pair JSON
// body is ~20 MiB, the binary form ~8 MiB), small enough that one hostile
// request cannot OOM the process.
const DefaultMaxBodyBytes = 256 << 20

// DefaultMaxPropose bounds the ?n= of one propose call when SetMaxPropose
// is not called. Without a cap, a single request for n=1e9 over a large
// pool forces a giant batch allocation and a multi-hundred-MB response;
// above the cap the server answers 400 and the client batches its pulls.
const DefaultMaxPropose = 8192

// StatusClientClosedRequest is the disposition recorded when the client
// disconnected mid-request (context cancellation observed by a handler):
// nginx's non-standard 499. It is counted separately from the 4xx class in
// oasis_http_requests_total — a hung-up client is not a client error, and
// admission control keys off the error-rate signals.
const StatusClientClosedRequest = 499

// Server is the HTTP front-end over a session.Manager.
type Server struct {
	mgr               *session.Manager
	jrn               *wal.Journal
	pools             *poolstore.Store
	poolDeleteBarrier func() error
	maxBody           int64

	// Observability wiring (see metrics.go and tracing.go): the metrics
	// registry behind GET /metrics, the structured access log with its
	// slow-request threshold, the trace collector behind /debug/traces,
	// the advertised version string, and the process start time behind
	// the uptime figures. met, accessLog, trc and version must be set
	// before Handler is called.
	met        *serverMetrics
	accessLog  *log.Logger
	slowReq    time.Duration
	trc        *trace.Collector
	profLabels bool
	reqSeq     atomic.Uint64
	bootPrefix uint64
	bootID     string
	version    string
	start      time.Time

	// Admission control (see admission.go) and the propose batch cap. adm
	// is an atomic pointer so SetAdmission can retune limits on a live
	// server without racing in-flight admit checks; admMet caches the
	// rejected counters so the retune does not re-register metric series.
	adm        atomic.Pointer[admission]
	admMet     *admissionMetrics
	maxPropose int
}

// New wraps a manager. Every server boot draws a random 64-bit prefix:
// request IDs are "<16-hex-prefix>-<seq>" and generated trace IDs embed
// the same prefix, so IDs are globally unique across restarts and a trace
// ID is greppable straight from an access-log line.
func New(mgr *session.Manager) *Server {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return &Server{
		mgr:        mgr,
		maxBody:    DefaultMaxBodyBytes,
		maxPropose: DefaultMaxPropose,
		start:      time.Now(),
		bootPrefix: binary.BigEndian.Uint64(b[:]),
		bootID:     hex.EncodeToString(b[:]),
	}
}

// SetJournal wires the write-ahead log into the ops endpoints: /healthz
// degrades to 503 once the journal enters its sticky failure state, and
// /v1/stats reports its counters.
func (s *Server) SetJournal(j *wal.Journal) { s.jrn = j }

// SetPools wires the content-addressed pool store into the /v1/pools
// endpoints and the stats report. It should be the same store the manager
// resolves Config.PoolID through.
func (s *Server) SetPools(p *poolstore.Store) { s.pools = p }

// SetMaxBodyBytes bounds every request body; requests beyond the limit get
// 413. Non-positive keeps the default.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n > 0 {
		s.maxBody = n
	}
}

// SetMaxPropose bounds the batch size one propose call may request; ?n=
// above the cap gets 400. Non-positive keeps the default.
func (s *Server) SetMaxPropose(n int) {
	if n > 0 {
		s.maxPropose = n
	}
}

// SetPoolDeleteBarrier installs a hook run before any pool is removed; a
// hook error aborts the delete (500). Snapshot-mode servers use it to
// persist a fresh snapshot first: once the barrier returns, no durable
// state references the pool about to go, so a crash at any point can never
// leave a snapshot that names a deleted pool. (WAL mode needs no barrier —
// replay absolves create records for sessions the log later deletes.)
func (s *Server) SetPoolDeleteBarrier(f func() error) { s.poolDeleteBarrier = f }

// Manager returns the underlying session manager (e.g. for snapshotting at
// shutdown).
func (s *Server) Manager() *session.Manager { return s.mgr }

// Handler builds the route table. The metrics registry and the access log
// must be wired (EnableMetrics, SetAccessLog) before Handler is called:
// each route is wrapped at registration time, because the outer middleware
// cannot see the ServeMux pattern a request matched.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /v1/sessions", s.createSession)
	handle("GET /v1/sessions", s.listSessions)
	// The hot session routes run behind admission control (a no-op wrapper
	// until SetAdmission is called); everything else — creates, deletes,
	// pools, ops probes — is never shed.
	handle("GET /v1/sessions/{id}", s.admit(s.getSession))
	handle("GET /v1/sessions/{id}/estimate", s.admit(s.getSession))
	handle("GET /v1/sessions/{id}/diagnostics", s.getDiagnostics)
	handle("GET /v1/sessions/{id}/propose", s.admit(s.propose))
	handle("POST /v1/sessions/{id}/labels", s.admit(s.commitLabels))
	handle("DELETE /v1/sessions/{id}", s.deleteSession)
	handle("POST /v1/pools", s.uploadPool)
	handle("GET /v1/pools", s.listPools)
	handle("GET /v1/pools/{id}", s.getPool)
	handle("DELETE /v1/pools/{id}", s.deletePool)
	handle("GET /healthz", s.healthz)
	handle("GET /v1/stats", s.stats)
	handle("GET /debug/dashboard", s.dashboard)
	if s.met != nil {
		handle("GET /metrics", s.metricsHandler)
	}
	if s.trc != nil {
		handle("GET /debug/traces", s.debugTraces)
		handle("GET /debug/traces/{id}", s.debugTrace)
	}
	return mux
}

// limitBody caps r's body at the server's max-body limit. Reads past the
// limit fail with *http.MaxBytesError, which decodeJSON and readAll turn
// into a 413.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
}

// decodeJSON decodes a bounded JSON request body into v, writing the error
// response itself when it reports false: 415 for a Content-Type that is not
// JSON, 413 for an over-limit body, 400 otherwise. The whole body must be
// exactly one JSON value — trailing tokens after it ({"a":1}{"b":2}) are
// rejected, so a smuggled second document can never ride a valid first one
// through proxies that buffer whole bodies.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any, what string) bool {
	// An absent Content-Type defaults to JSON (curl-friendliness); a present
	// one must actually say JSON now that the binary protocol makes the
	// header load-bearing on the shared endpoints.
	if ct := r.Header.Get("Content-Type"); ct != "" && !mediaTypeIs(ct, "application/json") {
		writeError(w, http.StatusUnsupportedMediaType, "bad %s: Content-Type %q, want application/json (or %s on binary-capable endpoints)", what, ct, ContentTypeBinary)
		return false
	}
	s.limitBody(w, r)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		writeBodyError(w, err, what)
		return false
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		writeError(w, http.StatusBadRequest, "bad %s: trailing data after the JSON value", what)
		return false
	}
	return true
}

// writeBodyError writes the uniform response for a failed body read or
// decode: 413 when the max-body limit cut it off, 400 otherwise.
func writeBodyError(w http.ResponseWriter, err error, what string) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "bad %s: body exceeds the %d-byte limit", what, tooBig.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "bad %s: %v", what, err)
}

// HealthResponse is the body of GET /healthz. Error carries the WAL's
// sticky fail-stop error when the probe reports 503, and DamagedPools the
// count of quarantined pool files (informational: damaged pools degrade
// specific sessions, not the whole service), so the probe explains itself
// instead of requiring a log dive.
type HealthResponse struct {
	Status       string `json:"status"` // "ok" or "degraded"
	Error        string `json:"error,omitempty"`
	DamagedPools int    `json:"damagedPools,omitempty"`
	// DegenerateSessions counts sessions whose degeneracy alarm is in the
	// degenerate state. Informational, like DamagedPools: a degenerate
	// sampler needs operator attention but does not fail the liveness probe
	// (the service can still acknowledge writes).
	DegenerateSessions int `json:"degenerateSessions,omitempty"`
}

// degenerateSessions counts live sessions in the degenerate alarm state,
// shard by shard.
func (s *Server) degenerateSessions() int {
	n := 0
	for shard := 0; shard < s.mgr.Shards(); shard++ {
		for _, sess := range s.mgr.Sessions(shard) {
			if sess.SamplerHealth().State == diag.StateDegenerate {
				n++
			}
		}
	}
	return n
}

// healthz answers load-balancer probes: 200 while the service can
// acknowledge writes, 503 once the WAL has fail-stopped.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	var damaged int
	if s.pools != nil {
		damaged = len(s.pools.Damaged())
	}
	degen := s.degenerateSessions()
	if s.jrn != nil {
		if err := s.jrn.Err(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "degraded", Error: err.Error(), DamagedPools: damaged, DegenerateSessions: degen})
			return
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", DamagedPools: damaged, DegenerateSessions: degen})
}

// ShardStats is one session-manager shard's slice of the totals. With a WAL
// attached, shard i's journal lane counters appear as lane i in the WAL
// block.
type ShardStats struct {
	Shard            int `json:"shard"`
	Sessions         int `json:"sessions"`
	LabelsCommitted  int `json:"labelsCommitted"`
	PendingProposals int `json:"pendingProposals"`
}

// StatsResponse is the body of GET /v1/stats: service-wide totals, the
// per-shard breakdown, plus the WAL's segment/sync counters (aggregate and
// per lane) when durability is enabled and the pool store's counters when
// one is attached.
type StatsResponse struct {
	Version          string           `json:"version,omitempty"`
	UptimeSeconds    float64          `json:"uptimeSeconds"`
	Sessions         int              `json:"sessions"`
	LabelsCommitted  int              `json:"labelsCommitted"`
	PendingProposals int              `json:"pendingProposals"`
	Shards           []ShardStats     `json:"shards"`
	WAL              *wal.Stats       `json:"wal,omitempty"`
	Pools            *poolstore.Stats `json:"pools,omitempty"`
	// Trace reports the trace collector's lifetime counters and ring
	// occupancy when tracing is enabled.
	Trace *trace.CollectorStats `json:"trace,omitempty"`
	// Diagnostics summarises the convergence-diagnostics footprint across
	// all live sessions.
	Diagnostics DiagnosticsStats `json:"diagnostics"`
	Runtime     RuntimeStats     `json:"runtime"`
}

// DiagnosticsStats is the convergence-diagnostics block of /v1/stats.
type DiagnosticsStats struct {
	// SeriesMemBytes is the fixed memory held by all sessions' diagnostics
	// rings together.
	SeriesMemBytes int `json:"seriesMemBytes"`
	// DegenerateSessions counts sessions whose degeneracy alarm currently
	// reads degenerate.
	DegenerateSessions int `json:"degenerateSessions"`
}

// RuntimeStats is the Go runtime block of /v1/stats.
type RuntimeStats struct {
	GoVersion           string  `json:"goVersion"`
	Goroutines          int     `json:"goroutines"`
	HeapAllocBytes      uint64  `json:"heapAllocBytes"`
	HeapObjects         uint64  `json:"heapObjects"`
	GCCycles            uint32  `json:"gcCycles"`
	GCPauseTotalSeconds float64 `json:"gcPauseTotalSeconds"`
}

// stats aggregates shard by shard: each shard's sessions are snapshotted
// under that shard's lock alone, so a stats poll never stops the world.
func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Version:       s.version,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Shards:        make([]ShardStats, s.mgr.Shards()),
		Runtime:       readRuntimeStats(),
	}
	for shard := 0; shard < s.mgr.Shards(); shard++ {
		ss := ShardStats{Shard: shard}
		for _, st := range s.mgr.ListShard(shard) {
			ss.Sessions++
			ss.LabelsCommitted += st.LabelsCommitted
			ss.PendingProposals += st.PendingProposals
		}
		resp.Shards[shard] = ss
		resp.Sessions += ss.Sessions
		resp.LabelsCommitted += ss.LabelsCommitted
		resp.PendingProposals += ss.PendingProposals
		for _, sess := range s.mgr.Sessions(shard) {
			resp.Diagnostics.SeriesMemBytes += sess.DiagMemBytes()
			if sess.SamplerHealth().State == diag.StateDegenerate {
				resp.Diagnostics.DegenerateSessions++
			}
		}
	}
	if s.jrn != nil {
		st := s.jrn.Stats()
		resp.WAL = &st
	}
	if s.pools != nil {
		st := s.pools.Stats()
		resp.Pools = &st
	}
	if s.trc != nil {
		ts := s.trc.Stats()
		resp.Trace = &ts
	}
	writeJSON(w, http.StatusOK, resp)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// lookup resolves {id} to a session or writes a 404.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session.Session, bool) {
	sess, err := s.mgr.GetCtx(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return nil, false
	}
	return sess, true
}

func (s *Server) createSession(w http.ResponseWriter, r *http.Request) {
	var cfg session.Config
	tr := trace.FromContext(r.Context())
	dsp := tr.Start("server", "http.decode")
	ok := s.decodeJSON(w, r, &cfg, "config")
	dsp.End()
	if !ok {
		return
	}
	sess, err := s.mgr.CreateCtx(r.Context(), cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, sess.Status())
}

func (s *Server) listSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sessions []session.Status `json:"sessions"`
	}{Sessions: s.mgr.List()})
}

func (s *Server) getSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	st := sess.Status()
	if wantsBinary(r) {
		bb := getBinBuf()
		bb.buf = AppendEstimateResponse(bb.buf[:0], &st)
		writeBinary(w, bb.buf)
		putBinBuf(bb)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// clientGone reports whether err is the request context's cancellation —
// the client hung up (or its deadline passed) while the handler was
// working. Handlers record it as StatusClientClosedRequest instead of a
// 4xx/5xx so a disconnect storm cannot pollute the error-rate signals
// admission control keys off.
func clientGone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ProposeResponse is the body of GET .../propose.
type ProposeResponse struct {
	Proposals []session.Proposal `json:"proposals"`
	// Exhausted reports that the session's label budget is fully committed;
	// polling workers should stop.
	Exhausted bool `json:"exhausted,omitempty"`
}

func (s *Server) propose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	n := 1
	if q := r.URL.Query().Get("n"); q != "" {
		var err error
		if n, err = strconv.Atoi(q); err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer")
			return
		}
		if n > s.maxPropose {
			writeError(w, http.StatusBadRequest, "n=%d exceeds the server's max propose batch of %d", n, s.maxPropose)
			return
		}
	}
	var (
		props []session.Proposal
		err   error
	)
	s.withShardLabel(r.Context(), sess.ID(), func(ctx context.Context) {
		props, err = sess.ProposeCtx(ctx, n)
	})
	exhausted := false
	switch {
	case errors.Is(err, session.ErrBudgetExhausted):
		props, exhausted = nil, true
	case clientGone(err):
		writeError(w, StatusClientClosedRequest, "client disconnected mid-propose: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if wantsBinary(r) {
		bb := getBinBuf()
		bb.pr.Proposals, bb.pr.Exhausted = props, exhausted
		bb.buf = AppendProposeResponse(bb.buf[:0], &bb.pr)
		writeBinary(w, bb.buf)
		bb.pr.Proposals = nil
		putBinBuf(bb)
		return
	}
	if props == nil {
		props = []session.Proposal{}
	}
	writeJSON(w, http.StatusOK, ProposeResponse{Proposals: props, Exhausted: exhausted})
}

// Label is one crowd answer: the pool pair and its Boolean label.
type Label struct {
	Pair  int  `json:"pair"`
	Label bool `json:"label"`
}

// LabelsRequest is the body of POST .../labels.
type LabelsRequest struct {
	Labels []Label `json:"labels"`
}

// LabelResult reports one answer's fate: "ok" (a fresh label, committed),
// "duplicate" (the pair was already labelled; the re-answer is ignored) or
// "expired" (no live lease; the pair is proposable again).
type LabelResult struct {
	Pair   int    `json:"pair"`
	Status string `json:"status"`
}

// LabelsResponse is the body of the labels endpoint's reply; Committed
// counts only fresh labels ("ok" results).
type LabelsResponse struct {
	Results   []LabelResult `json:"results"`
	Committed int           `json:"committed"`
}

func (s *Server) commitLabels(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	tr := trace.FromContext(r.Context())
	binBody := isBinaryBody(r)
	var bb *binBuf
	var pairs []int
	var labels []bool
	if binBody {
		bb = getBinBuf()
		defer putBinBuf(bb)
		dsp := tr.Start("server", "http.decode")
		if !s.readBinBody(w, r, bb) {
			dsp.End()
			return
		}
		if err := DecodeLabelsRequest(bb.buf, &bb.req); err != nil {
			dsp.End()
			writeError(w, http.StatusBadRequest, "bad labels: %v", err)
			return
		}
		dsp.End()
		bb.pairs, bb.labels = bb.pairs[:0], bb.labels[:0]
		for _, l := range bb.req.Labels {
			bb.pairs = append(bb.pairs, l.Pair)
			bb.labels = append(bb.labels, l.Label)
		}
		pairs, labels = bb.pairs, bb.labels
	} else {
		var req LabelsRequest
		dsp := tr.Start("server", "http.decode")
		ok = s.decodeJSON(w, r, &req, "labels")
		dsp.End()
		if !ok {
			return
		}
		pairs = make([]int, len(req.Labels))
		labels = make([]bool, len(req.Labels))
		for i, l := range req.Labels {
			pairs[i] = l.Pair
			labels[i] = l.Label
		}
	}
	// The commit is acknowledged only after the session's journal append
	// succeeded (CommitBatch returns an error otherwise): a 200 here means
	// the labels are as durable as the configured fsync policy makes them.
	var (
		results []session.CommitResult
		err     error
	)
	s.withShardLabel(r.Context(), sess.ID(), func(ctx context.Context) {
		results, err = sess.CommitBatchCtx(ctx, pairs, labels)
	})
	switch {
	case clientGone(err):
		writeError(w, StatusClientClosedRequest, "client disconnected mid-commit: %v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if wantsBinary(r) {
		if bb == nil {
			bb = getBinBuf()
			defer putBinBuf(bb)
		}
		bb.buf = appendLabelsResults(bb.buf[:0], pairs, results)
		writeBinary(w, bb.buf)
		return
	}
	resp := LabelsResponse{Results: make([]LabelResult, len(results))}
	for i, cr := range results {
		resp.Results[i] = LabelResult{Pair: pairs[i], Status: binStatusNames[cr]}
		if cr == session.Committed {
			resp.Committed++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) deleteSession(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Delete(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	s.forgetSessionLimiter(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

// PoolUploadRequest is the JSON body of POST /v1/pools: the pool columns,
// exactly as in session.Config's inline form.
type PoolUploadRequest struct {
	Scores []float64 `json:"scores"`
	Preds  []bool    `json:"preds"`
}

// PoolResponse describes one stored pool. Created reports whether the
// upload stored a new pool (false: identical content was already stored —
// the poolId is the same either way).
type PoolResponse struct {
	PoolID  string `json:"poolId"`
	Pairs   int    `json:"pairs"`
	Bytes   int64  `json:"bytes"`
	Refs    int    `json:"refs"`
	Created bool   `json:"created,omitempty"`
}

// PoolsResponse is the body of GET /v1/pools.
type PoolsResponse struct {
	Pools []poolstore.Info `json:"pools"`
}

// poolsEnabled writes the uniform 404 for servers running without a pool
// store.
func (s *Server) poolsEnabled(w http.ResponseWriter) bool {
	if s.pools == nil {
		writeError(w, http.StatusNotFound, "pool store disabled (start the server with -pools-dir)")
		return false
	}
	return true
}

func poolInfoResponse(info poolstore.Info, created bool) PoolResponse {
	return PoolResponse{PoolID: info.ID, Pairs: info.Pairs, Bytes: info.Bytes, Refs: info.Refs, Created: created}
}

// uploadPool stores a pool under its content address: a JSON body carries
// the columns, an application/octet-stream body the canonical binary
// columnar encoding (see internal/poolstore). Uploading the same pool twice
// is an idempotent dedup hit.
func (s *Server) uploadPool(w http.ResponseWriter, r *http.Request) {
	if !s.poolsEnabled(w) {
		return
	}
	ct := r.Header.Get("Content-Type")
	if mt, _, err := mime.ParseMediaType(ct); err == nil {
		ct = mt
	}
	var (
		info    poolstore.Info
		created bool
	)
	if ct == "application/octet-stream" || strings.HasPrefix(ct, "application/x-oasis-pool") {
		s.limitBody(w, r)
		data, err := io.ReadAll(r.Body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "bad pool: body exceeds the %d-byte limit", tooBig.Limit)
				return
			}
			writeError(w, http.StatusBadRequest, "bad pool: %v", err)
			return
		}
		info, created, err = s.pools.PutEncoded(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad pool: %v", err)
			return
		}
	} else {
		var req PoolUploadRequest
		if !s.decodeJSON(w, r, &req, "pool") {
			return
		}
		var err error
		info, created, err = s.pools.Put(req.Scores, req.Preds)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad pool: %v", err)
			return
		}
	}
	// The response comes from Put's own registration snapshot — never from a
	// re-read of the store, which a concurrent delete could have emptied.
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, poolInfoResponse(info, created))
}

func (s *Server) listPools(w http.ResponseWriter, r *http.Request) {
	if !s.poolsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, PoolsResponse{Pools: s.pools.List()})
}

func (s *Server) getPool(w http.ResponseWriter, r *http.Request) {
	if !s.poolsEnabled(w) {
		return
	}
	info, err := s.pools.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, poolInfoResponse(info, false))
}

// deletePool drops an unreferenced pool: 204 on success, 409 while sessions
// still reference it, 404 for unknown IDs.
func (s *Server) deletePool(w http.ResponseWriter, r *http.Request) {
	if !s.poolsEnabled(w) {
		return
	}
	if s.poolDeleteBarrier != nil {
		if err := s.poolDeleteBarrier(); err != nil {
			writeError(w, http.StatusInternalServerError, "pool delete barrier: %v", err)
			return
		}
	}
	switch err := s.pools.Remove(r.PathValue("id")); {
	case err == nil:
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, poolstore.ErrInUse):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusNotFound, "%v", err)
	}
}

// ShutdownGrace is how long Serve waits for in-flight requests on shutdown.
const ShutdownGrace = 5 * time.Second

// Serve runs the service on addr until ctx is cancelled, then shuts down
// gracefully (in-flight requests get ShutdownGrace to finish). If ready is
// non-nil it receives the listener's resolved address once the server is
// accepting connections (useful with ":0").
func (s *Server) Serve(ctx context.Context, addr string, ready chan<- string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-errCh:
		return err
	}
}
