package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/session"
)

// TestTokenBucket pins the bucket arithmetic with a synthetic clock: burst
// drains, tokens refill at the configured rate, retryAfter predicts the
// next token, and a backwards clock never mints tokens.
func TestTokenBucket(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newTokenBucket(2, 4, t0) // 2 tokens/s, burst 4

	for i := 0; i < 4; i++ {
		if ok, _ := b.take(t0); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := b.take(t0)
	if ok {
		t.Fatal("take beyond burst allowed")
	}
	// Empty bucket at 2 tokens/s: the next token is 500ms away.
	if retry != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retry)
	}

	// 1s later two tokens have accrued.
	t1 := t0.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(t1); !ok {
			t.Fatalf("take %d after refill refused", i)
		}
	}
	if ok, _ := b.take(t1); ok {
		t.Fatal("third take after 1s allowed; refill exceeded rate")
	}

	// A clock that runs backwards must not mint tokens.
	if ok, _ := b.take(t1.Add(-time.Hour)); ok {
		t.Fatal("backwards clock minted a token")
	}

	// Refill caps at burst no matter how long the idle gap.
	t2 := t1.Add(time.Hour)
	for i := 0; i < 4; i++ {
		if ok, _ := b.take(t2); !ok {
			t.Fatalf("take %d after long idle refused", i)
		}
	}
	if ok, _ := b.take(t2); ok {
		t.Fatal("burst cap not enforced after long idle")
	}

	// Zero burst derives max(1, rate).
	b2 := newTokenBucket(0.5, 0, t0)
	if b2.burst != 1 {
		t.Fatalf("derived burst = %v, want 1", b2.burst)
	}
}

// TestSessionLimiters pins the per-session table: buckets are independent,
// forget drops state, and the shard map cannot grow past its cap.
func TestSessionLimiters(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newSessionLimiters(1, 1, 4)

	if ok, _ := l.take("a", now); !ok {
		t.Fatal("first take for a refused")
	}
	if ok, _ := l.take("a", now); ok {
		t.Fatal("second take for a allowed past burst")
	}
	// Session b has its own bucket.
	if ok, _ := l.take("b", now); !ok {
		t.Fatal("b starved by a's bucket")
	}

	// forget resets: a re-created bucket starts with a full burst.
	l.forget("a")
	if ok, _ := l.take("a", now); !ok {
		t.Fatal("take after forget refused")
	}

	// Flooding unknown IDs cannot grow a shard past the cap.
	for i := 0; i < 3*sessionLimiterShardCap; i++ {
		l.take("flood-"+strconv.Itoa(i), now)
	}
	for i := range l.shards {
		if n := len(l.shards[i].m); n > sessionLimiterShardCap {
			t.Fatalf("shard %d grew to %d buckets, cap is %d", i, n, sessionLimiterShardCap)
		}
	}
}

// newAdmissionTestServer builds a server with one session and the given
// admission config, plus metrics so rejected counters can be asserted.
func newAdmissionTestServer(t *testing.T, cfg AdmissionConfig, ids ...string) (*httptest.Server, *Server) {
	t.Helper()
	scores := []float64{0.9, 0.8, 0.2, 0.1, 0.7, 0.3}
	preds := []bool{true, true, false, false, true, false}
	mgr := session.NewManager(session.ManagerOptions{})
	srv := New(mgr)
	srv.EnableMetrics(obs.NewRegistry())
	srv.SetAdmission(cfg)
	for _, id := range ids {
		if _, err := mgr.Create(session.Config{
			ID: id, Scores: scores, Preds: preds, Calibrated: true,
			Options: oasis.Options{Strata: 2, Seed: 5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestGlobalRateLimit pins the 429 path: requests beyond the global bucket
// get 429 with a positive integer Retry-After and a shed-reason header, and
// the rejection is counted by reason.
func TestGlobalRateLimit(t *testing.T) {
	ts, _ := newAdmissionTestServer(t, AdmissionConfig{RatePerSec: 0.001, Burst: 2}, "s1")

	var ok200, ok429 int
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/sessions/s1/estimate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			ok429++
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Fatalf("Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
			}
			if got := resp.Header.Get("X-Shed-Reason"); got != shedGlobalRate {
				t.Fatalf("X-Shed-Reason %q, want %q", got, shedGlobalRate)
			}
		default:
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if ok200 != 2 || ok429 != 3 {
		t.Fatalf("got %d 200s and %d 429s, want 2 and 3", ok200, ok429)
	}

	fams := parseExposition(t, scrape(t, ts))
	if got := sumFamily(fams["oasis_http_rejected_total"], `reason="global_rate"`); got != 3 {
		t.Fatalf("rejected{global_rate} = %v, want 3", got)
	}

	// Ops routes are never shed: the probes that diagnose an overload keep
	// answering through one.
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz sheddable: status %d", resp.StatusCode)
		}
	}
}

// TestSessionRateLimit pins per-session isolation: a hammered session hits
// its bucket while a well-behaved one is untouched.
func TestSessionRateLimit(t *testing.T) {
	ts, _ := newAdmissionTestServer(t,
		AdmissionConfig{SessionRatePerSec: 0.001, SessionBurst: 1}, "noisy", "quiet")

	get := func(id string) int {
		resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/estimate")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("noisy"); code != http.StatusOK {
		t.Fatalf("noisy #1: %d", code)
	}
	for i := 0; i < 3; i++ {
		if code := get("noisy"); code != http.StatusTooManyRequests {
			t.Fatalf("noisy over budget: %d, want 429", code)
		}
	}
	// The quiet session's bucket is untouched by noisy's storm.
	if code := get("quiet"); code != http.StatusOK {
		t.Fatalf("quiet starved: %d", code)
	}

	fams := parseExposition(t, scrape(t, ts))
	if got := sumFamily(fams["oasis_http_rejected_total"], `reason="session_rate"`); got != 3 {
		t.Fatalf("rejected{session_rate} = %v, want 3", got)
	}
}

// TestBoundedQueue pins the saturation path by driving the admit wrapper
// directly: with one in-flight slot held and no queue, the next request
// sheds 503 queue_full at once; with a queue, it waits up to the timeout
// and sheds 503 queue_timeout.
func TestBoundedQueue(t *testing.T) {
	mgr := session.NewManager(session.ManagerOptions{})
	srv := New(mgr)
	srv.SetAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 0})

	release := make(chan struct{})
	started := make(chan struct{})
	blocking := srv.admit(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocking.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/x/estimate", nil))
	}()
	<-started

	// The slot is held and there is no queue: immediate 503 queue_full.
	rec := httptest.NewRecorder()
	blocking.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/x/estimate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue_full: status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("X-Shed-Reason"); got != shedQueueFull {
		t.Fatalf("X-Shed-Reason %q, want %q", got, shedQueueFull)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After %q on 503", rec.Header().Get("Retry-After"))
	}

	close(release)
	wg.Wait()

	// Now with a one-deep queue and a short timeout: the queued request
	// waits, times out, and sheds queue_timeout.
	srv.SetAdmission(AdmissionConfig{MaxInFlight: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond})
	release = make(chan struct{})
	started = make(chan struct{})
	blocking = srv.admit(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		blocking.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/x/estimate", nil))
	}()
	<-started

	t0 := time.Now()
	rec = httptest.NewRecorder()
	blocking.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/x/estimate", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue_timeout: status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("X-Shed-Reason"); got != shedQueueTimeout {
		t.Fatalf("X-Shed-Reason %q, want %q", got, shedQueueTimeout)
	}
	if waited := time.Since(t0); waited < 20*time.Millisecond {
		t.Fatalf("shed after %v, before the queue timeout", waited)
	}
	close(release)
	wg.Wait()

	// With the slot free again, requests pass untouched.
	plain := srv.admit(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) })
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/sessions/x/estimate", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", rec.Code)
	}
}

// TestDeleteForgetsSessionLimiter pins that deleting a session drops its
// rate-limit bucket: a recreated session with the same ID starts with a
// fresh burst instead of inheriting the old session's debt.
func TestDeleteForgetsSessionLimiter(t *testing.T) {
	ts, srv := newAdmissionTestServer(t,
		AdmissionConfig{SessionRatePerSec: 0.001, SessionBurst: 1}, "reborn")
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	if code := c.do("GET", "/v1/sessions/reborn/estimate", nil, nil); code != http.StatusOK {
		t.Fatalf("first: %d", code)
	}
	if code := c.do("GET", "/v1/sessions/reborn/estimate", nil, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second: %d, want 429", code)
	}
	if code := c.do("DELETE", "/v1/sessions/reborn", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	if _, err := srv.mgr.Create(session.Config{
		ID: "reborn", Scores: []float64{0.9, 0.1}, Preds: []bool{true, false}, Calibrated: true,
		Options: oasis.Options{Strata: 1, Seed: 5},
	}); err != nil {
		t.Fatal(err)
	}
	if code := c.do("GET", "/v1/sessions/reborn/estimate", nil, nil); code != http.StatusOK {
		t.Fatalf("recreated session inherited the old limiter debt: %d", code)
	}
}
