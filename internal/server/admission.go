package server

// Admission control for the hot session routes (propose/labels/estimate).
// Under overload an unprotected server degrades by collapsing: every excess
// request parks a goroutine on a shard lock or a WAL fsync queue, latency
// grows without bound, and clients time out and retry, making it worse. The
// layer here sheds instead: token-bucket rate limits (global and
// per-session) answer 429 Too Many Requests with a Retry-After hint, and a
// bounded in-flight gate with a short queue answers 503 with a shed reason
// once the server is saturated — so goroutine count and queueing delay stay
// bounded at any offered load.
//
// Per-session limits exist because degenerate sessions misbehave
// distinctly: a session whose SIS weights have degenerated (the Bezáková
// et al. negative examples) drives its clients into tight re-propose
// loops. A global bucket alone would let one such session starve the
// healthy ones; the per-session buckets ride the session manager's shard
// fan so their state never contends on one lock.
//
// Every rejection is counted in oasis_http_rejected_total{reason} and, on
// sampled requests, recorded as an admission.reject span attribute, so the
// shed rate is visible to the same scrape that watches latency.

import (
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/obs"
	"oasis/internal/session"
	"oasis/internal/trace"
)

// DefaultQueueTimeout bounds how long an admitted-but-queued request waits
// for an in-flight slot before the server sheds it with a 503.
const DefaultQueueTimeout = 250 * time.Millisecond

// sessionLimiterShardCap bounds each limiter shard's map so unknown-session
// request floods cannot grow it without bound; at the cap an arbitrary
// bucket is evicted (a re-created bucket starts with a full burst, which
// only ever errs in the client's favor).
const sessionLimiterShardCap = 4096

// AdmissionConfig configures SetAdmission. Zero values disable the
// corresponding control.
type AdmissionConfig struct {
	// RatePerSec is the global hot-path request rate limit; requests beyond
	// it get 429 with Retry-After. 0 = unlimited.
	RatePerSec float64
	// Burst is the global bucket depth; 0 derives max(1, RatePerSec).
	Burst int
	// SessionRatePerSec rate-limits each session's hot-path requests
	// independently. 0 = unlimited.
	SessionRatePerSec float64
	// SessionBurst is each session bucket's depth; 0 derives
	// max(1, SessionRatePerSec).
	SessionBurst int
	// MaxInFlight bounds hot-path requests being served at once; excess
	// requests queue (up to MaxQueue, for up to QueueTimeout) and are then
	// shed with 503. 0 = unbounded.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for an in-flight slot;
	// beyond it the server sheds immediately. 0 = no queue: over-limit
	// requests shed at once.
	MaxQueue int
	// QueueTimeout is the longest a queued request waits for a slot;
	// 0 = DefaultQueueTimeout.
	QueueTimeout time.Duration
}

// tokenBucket is a mutex-guarded token bucket: take consumes one token when
// available, else reports how long until one accrues. A plain mutex (not
// atomics) is deliberate: the critical section is a handful of float ops,
// and correctness under concurrent refill arithmetic is worth more than the
// nanoseconds.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, rate)
	}
	return &tokenBucket{rate: rate, burst: b, tokens: b, last: now}
}

// take consumes one token, or reports the wait until one accrues.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	// A negative now (clock skew between callers) must not mint tokens:
	// last only advances.
	if now.After(b.last) {
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// sessionLimiters is the per-session bucket table, sharded like the session
// manager so concurrent requests for different sessions rarely contend.
type sessionLimiters struct {
	rate   float64
	burst  int
	shards []sessionLimiterShard
}

type sessionLimiterShard struct {
	mu sync.Mutex
	m  map[string]*tokenBucket
}

func newSessionLimiters(rate float64, burst, shards int) *sessionLimiters {
	return &sessionLimiters{rate: rate, burst: burst, shards: make([]sessionLimiterShard, shards)}
}

// shard maps a session ID to its bucket shard with the same hash the
// session manager uses, so a session's limiter lives on the same fan-out
// index as its shard lock.
func (l *sessionLimiters) shard(id string) *sessionLimiterShard {
	return &l.shards[session.ShardOf(id, len(l.shards))]
}

func (l *sessionLimiters) take(id string, now time.Time) (ok bool, retryAfter time.Duration) {
	sh := l.shard(id)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[string]*tokenBucket)
	}
	b := sh.m[id]
	if b == nil {
		if len(sh.m) >= sessionLimiterShardCap {
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
		b = newTokenBucket(l.rate, l.burst, now)
		sh.m[id] = b
	}
	sh.mu.Unlock()
	return b.take(now)
}

// forget drops a session's bucket (called when the session is deleted).
func (l *sessionLimiters) forget(id string) {
	sh := l.shard(id)
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// admission is the installed control state.
type admission struct {
	global       *tokenBucket
	perSession   *sessionLimiters
	slots        chan struct{}
	maxQueue     int64
	queueTimeout time.Duration
	waiting      atomic.Int64

	// rejected counts sheds by reason; nil until metrics are enabled.
	rejected atomic.Pointer[admissionMetrics]
}

// Shed reasons, the label values of oasis_http_rejected_total.
const (
	shedGlobalRate   = "global_rate"
	shedSessionRate  = "session_rate"
	shedQueueFull    = "queue_full"
	shedQueueTimeout = "queue_timeout"
)

type admissionMetrics struct {
	globalRate, sessionRate, queueFull, queueTimeout *obs.Counter
}

func newAdmissionMetrics(reg *obs.Registry) *admissionMetrics {
	c := func(reason string) *obs.Counter {
		return reg.Counter("oasis_http_rejected_total",
			"Hot-path requests rejected by admission control, by shed reason.",
			obs.Label{Name: "reason", Value: reason})
	}
	return &admissionMetrics{
		globalRate:   c(shedGlobalRate),
		sessionRate:  c(shedSessionRate),
		queueFull:    c(shedQueueFull),
		queueTimeout: c(shedQueueTimeout),
	}
}

func (a *admission) count(reason string) {
	m := a.rejected.Load()
	if m == nil {
		return
	}
	switch reason {
	case shedGlobalRate:
		m.globalRate.Inc()
	case shedSessionRate:
		m.sessionRate.Inc()
	case shedQueueFull:
		m.queueFull.Inc()
	case shedQueueTimeout:
		m.queueTimeout.Inc()
	}
}

// SetAdmission installs admission control on the hot session routes
// (propose, labels, estimate/status). Call before Handler(). Ops routes
// (healthz, metrics, stats, traces) are never rate-limited or shed — the
// probes that diagnose an overload must keep answering through one.
func (s *Server) SetAdmission(cfg AdmissionConfig) {
	a := &admission{queueTimeout: cfg.QueueTimeout}
	if a.queueTimeout <= 0 {
		a.queueTimeout = DefaultQueueTimeout
	}
	now := time.Now()
	if cfg.RatePerSec > 0 {
		a.global = newTokenBucket(cfg.RatePerSec, cfg.Burst, now)
	}
	if cfg.SessionRatePerSec > 0 {
		// Shard the bucket table as wide as the session manager: sessions
		// spread across it uniformly, so the hot-path lock fan matches.
		a.perSession = newSessionLimiters(cfg.SessionRatePerSec, cfg.SessionBurst, s.mgr.Shards())
	}
	if cfg.MaxInFlight > 0 {
		a.slots = make(chan struct{}, cfg.MaxInFlight)
		a.maxQueue = int64(cfg.MaxQueue)
	}
	s.adm.Store(a)
	s.wireAdmissionMetrics()
}

// wireAdmissionMetrics creates the rejected counters once both the
// admission layer and the metrics registry exist, whichever is installed
// second.
func (s *Server) wireAdmissionMetrics() {
	a := s.adm.Load()
	if a == nil || s.met == nil || a.rejected.Load() != nil {
		return
	}
	if s.admMet == nil {
		s.admMet = newAdmissionMetrics(s.met.reg)
	}
	a.rejected.Store(s.admMet)
}

// admit wraps a hot-path handler with the admission checks. The wrapper
// runs inside the instrument middleware, so rejections are still counted,
// logged and traced like any other response.
func (s *Server) admit(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		a := s.adm.Load()
		if a == nil {
			h(w, r)
			return
		}
		now := time.Now()
		if a.global != nil {
			if ok, retry := a.global.take(now); !ok {
				s.shed(w, r, a, http.StatusTooManyRequests, shedGlobalRate, retry)
				return
			}
		}
		if a.perSession != nil {
			if id := r.PathValue("id"); id != "" {
				if ok, retry := a.perSession.take(id, now); !ok {
					s.shed(w, r, a, http.StatusTooManyRequests, shedSessionRate, retry)
					return
				}
			}
		}
		if a.slots != nil {
			select {
			case a.slots <- struct{}{}:
			default:
				// Saturated: queue if there is room, else shed now. The
				// waiting counter bounds queued goroutines; the timer bounds
				// their wait, so queueing delay can never grow unboundedly.
				if a.waiting.Add(1) > a.maxQueue {
					a.waiting.Add(-1)
					s.shed(w, r, a, http.StatusServiceUnavailable, shedQueueFull, a.queueTimeout)
					return
				}
				t := time.NewTimer(a.queueTimeout)
				select {
				case a.slots <- struct{}{}:
					a.waiting.Add(-1)
					t.Stop()
				case <-t.C:
					a.waiting.Add(-1)
					s.shed(w, r, a, http.StatusServiceUnavailable, shedQueueTimeout, a.queueTimeout)
					return
				case <-r.Context().Done():
					a.waiting.Add(-1)
					t.Stop()
					writeError(w, StatusClientClosedRequest, "client disconnected while queued for admission")
					return
				}
			}
			defer func() { <-a.slots }()
		}
		h(w, r)
	}
}

// shed writes one rejection: Retry-After (whole seconds, rounded up, at
// least 1) on both 429 and 503, an X-Shed-Reason header plus the reason in
// the body, the rejected counter, and an admission.reject span on sampled
// requests.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, a *admission, code int, reason string, retry time.Duration) {
	a.count(reason)
	if tr := trace.FromContext(r.Context()); tr != nil {
		tr.AddSpan("server", "admission.reject", 0).Attr("reason", reason)
	}
	secs := int64(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("X-Shed-Reason", reason)
	switch code {
	case http.StatusTooManyRequests:
		writeError(w, code, "rate limit exceeded (%s); retry after %ds", reason, secs)
	default:
		writeError(w, code, "server overloaded (%s); retry after %ds", reason, secs)
	}
}

// forgetSessionLimiter drops the per-session bucket of a deleted session.
func (s *Server) forgetSessionLimiter(id string) {
	if a := s.adm.Load(); a != nil && a.perSession != nil {
		a.perSession.forget(id)
	}
}
