package server

// Tests of the convergence-diagnostics surface: the per-session JSON
// endpoint, the HTML dashboard, the degeneracy alarm's end-to-end journey
// (metrics gauge, log line, span attribute, healthz and stats counts), and
// the access-log proto=/shed= marks.

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oasis"
	"oasis/internal/diag"
	"oasis/internal/obs"
	"oasis/internal/session"
	"oasis/internal/trace"
)

// newDiagTestServer boots an in-process server over a manager with the
// given diagnostics options, with metrics, tracing (sample-everything) and
// a captured access log. The returned buffer holds the manager's
// diagnostics log lines (health transitions).
func newDiagTestServer(t *testing.T, dg session.DiagOptions) (*httptest.Server, *Server, *bytes.Buffer, *bytes.Buffer) {
	t.Helper()
	var diagBuf bytes.Buffer
	var diagMu log.Logger
	diagMu.SetOutput(&diagBuf)
	dg.Logf = diagMu.Printf
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: time.Minute, Diag: dg})
	srv := New(mgr)
	srv.EnableTracing(trace.NewCollector(trace.Options{SampleRate: 1}))
	var logBuf bytes.Buffer
	srv.SetAccessLog(log.New(&logBuf, "", 0), 0)
	srv.EnableMetrics(obs.NewRegistry())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, &logBuf, &diagBuf
}

// TestDiagnosticsEndpoint drives a session over HTTP and checks the
// diagnostics payload: a non-empty downsampled series with a monotone
// labels axis, per-stratum health, and effective thresholds.
func TestDiagnosticsEndpoint(t *testing.T) {
	ts, _, _, _ := newDiagTestServer(t, session.DiagOptions{SeriesCapacity: 16})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	runWorkload(t, c, "diag", 30, 4)

	var d session.Diagnostics
	if code := c.do("GET", "/v1/sessions/diag/diagnostics", nil, &d); code != http.StatusOK {
		t.Fatalf("diagnostics: status %d", code)
	}
	if d.ID != "diag" || d.State != "ok" {
		t.Fatalf("diagnostics header wrong: id=%q state=%q", d.ID, d.State)
	}
	if len(d.Series) == 0 || d.SeriesSeen != 30 {
		t.Fatalf("series empty or miscounted: len=%d seen=%d", len(d.Series), d.SeriesSeen)
	}
	if d.SeriesStride < 2 {
		t.Fatalf("30 batches into a 16-ring should have compacted: stride %d", d.SeriesStride)
	}
	for i := 1; i < len(d.Series); i++ {
		if d.Series[i].Labels < d.Series[i-1].Labels {
			t.Fatalf("labels axis not monotone at %d: %d after %d", i, d.Series[i].Labels, d.Series[i-1].Labels)
		}
	}
	if len(d.Strata) != 10 {
		t.Fatalf("diagnostics carry %d strata, want 10", len(d.Strata))
	}
	if d.Thresholds.ESSDegraded <= 0 || d.MemBytes <= 0 {
		t.Fatalf("thresholds/membytes not filled: %+v mem=%d", d.Thresholds, d.MemBytes)
	}

	if code := c.do("GET", "/v1/sessions/nope/diagnostics", nil, nil); code != http.StatusNotFound {
		t.Fatalf("diagnostics for unknown session: status %d, want 404", code)
	}
}

// TestDashboardRendersSparklines checks /debug/dashboard serves HTML with
// exactly two sparklines (estimate and ESS) per live session.
func TestDashboardRendersSparklines(t *testing.T) {
	ts, _, _, _ := newDiagTestServer(t, session.DiagOptions{})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	runWorkload(t, c, "alpha", 8, 4)
	runWorkload(t, c, "beta", 8, 4)

	resp, err := ts.Client().Get(ts.URL + "/debug/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	if !strings.HasPrefix(page, "<!DOCTYPE html>") || !strings.Contains(page, "</html>") {
		t.Fatal("dashboard is not a complete HTML document")
	}
	for _, id := range []string{"alpha", "beta"} {
		if !strings.Contains(page, "<code>"+id+"</code>") {
			t.Errorf("dashboard missing session %q", id)
		}
	}
	if got := strings.Count(page, `class="spark"`); got != 4 {
		t.Errorf("dashboard has %d sparklines, want 4 (two per session)", got)
	}
	if !strings.Contains(page, "<polyline") {
		t.Error("dashboard sparklines carry no polylines")
	}
}

// TestSeededDegeneracyEndToEnd is the acceptance test for the degeneracy
// alarms: thresholds no real weight sequence can satisfy provably walk a
// session to degenerate, and the transition is visible everywhere at once —
// the oasis_sampler_health_state gauge, the transition log line, a span
// attribute on the committing request's trace, the healthz count and the
// stats block.
func TestSeededDegeneracyEndToEnd(t *testing.T) {
	ts, _, _, diagBuf := newDiagTestServer(t, session.DiagOptions{
		Thresholds: diag.Thresholds{ESSDegenerate: 0.9999, ESSDegraded: -1, MinLabels: 5},
	})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	scores, preds, truth := benchPool(400, 13)
	if code := c.do("POST", "/v1/sessions", session.Config{
		ID: "degen", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 6, Seed: 17},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for r := 0; r < 10; r++ {
		var pr ProposeResponse
		if code := c.do("GET", "/v1/sessions/degen/propose?n=4", nil, &pr); code != http.StatusOK {
			t.Fatalf("propose: status %d", code)
		}
		req := LabelsRequest{}
		for _, p := range pr.Proposals {
			req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: truth[p.Pair]})
		}
		if code := c.do("POST", "/v1/sessions/degen/labels", req, nil); code != http.StatusOK {
			t.Fatalf("labels: status %d", code)
		}
	}

	// Metrics: the per-session health gauge reads 2 (degenerate).
	fams := parseExposition(t, scrape(t, ts))
	if got := sumFamily(fams["oasis_sampler_health_state"], "degen"); got != 2 {
		t.Errorf("oasis_sampler_health_state = %v, want 2", got)
	}
	if got := sumFamily(fams["oasis_diag_series_mem_bytes"]); got <= 0 {
		t.Errorf("oasis_diag_series_mem_bytes = %v, want > 0", got)
	}

	// Log: the transition was logged exactly once.
	if got := strings.Count(diagBuf.String(), "-> degenerate"); got != 1 {
		t.Errorf("degenerate transition logged %d times, want 1:\n%s", got, diagBuf.String())
	}

	// Span: some traced commit carries the health.transition span with the
	// state attribute.
	var list TracesResponse
	if code := c.do("GET", "/debug/traces", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	foundSpan := false
	for _, s := range list.Traces {
		var tj trace.TraceJSON
		if code := c.do("GET", "/debug/traces/"+s.ID, nil, &tj); code != http.StatusOK {
			continue
		}
		for _, sp := range tj.Spans {
			if sp.Name == "health.transition" && sp.Attrs["state"] == "degenerate" {
				foundSpan = true
			}
		}
	}
	if !foundSpan {
		t.Error("no trace carries a health.transition span with state=degenerate")
	}

	// healthz: counts the degenerate session without failing the probe.
	var hr HealthResponse
	if code := c.do("GET", "/healthz", nil, &hr); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hr.Status != "ok" || hr.DegenerateSessions != 1 {
		t.Errorf("healthz = %+v, want status ok with 1 degenerate session", hr)
	}

	// Stats: diagnostics block agrees, and the trace block reports ring
	// occupancy.
	var st StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Diagnostics.DegenerateSessions != 1 || st.Diagnostics.SeriesMemBytes <= 0 {
		t.Errorf("stats diagnostics block = %+v", st.Diagnostics)
	}
	if st.Trace == nil || st.Trace.Recorded == 0 || st.Trace.RecentCapacity == 0 {
		t.Errorf("stats trace block = %+v", st.Trace)
	}
	if st.Trace != nil && st.Trace.RecentHeld <= 0 {
		t.Errorf("trace ring occupancy not reported: %+v", st.Trace)
	}
}

// TestOpenMetricsScrapeCarriesExemplars checks /metrics content negotiation:
// an OpenMetrics Accept header switches the exposition to 1.0 (with # EOF)
// and the latency histogram's buckets carry trace_id exemplars from the
// traced requests that landed in them.
func TestOpenMetricsScrapeCarriesExemplars(t *testing.T) {
	ts, _, _, _ := newDiagTestServer(t, session.DiagOptions{})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	runWorkload(t, c, "om", 5, 4)

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("openmetrics scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypeOpenMetrics {
		t.Fatalf("content type %q, want %q", ct, obs.ContentTypeOpenMetrics)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("openmetrics exposition does not end with # EOF")
	}
	// With SampleRate 1 every request is traced, so at least one latency
	// bucket holds a trace_id exemplar.
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "oasis_http_request_seconds_bucket") &&
			strings.Contains(line, ` # {trace_id="`) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no latency bucket carries a trace_id exemplar:\n%s", text)
	}
	// Counter samples keep _total while their TYPE lines drop it.
	if !strings.Contains(text, "# TYPE oasis_http_requests counter") {
		t.Error("counter TYPE line not stripped of _total in OpenMetrics exposition")
	}

	// A plain scrape still serves 0.0.4 without exemplars.
	plain := scrape(t, ts)
	if strings.Contains(plain, "# EOF") || strings.Contains(plain, "trace_id=") {
		t.Error("plain scrape leaked OpenMetrics constructs")
	}
}

// TestAccessLogProtoAndShedMarks checks every access-log line carries the
// negotiated wire protocol and shed rejections carry the reason.
func TestAccessLogProtoAndShedMarks(t *testing.T) {
	ts, srv, logBuf, _ := newDiagTestServer(t, session.DiagOptions{})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	runWorkload(t, c, "marks", 1, 2)

	if !strings.Contains(logBuf.String(), "proto=json") {
		t.Errorf("access log missing proto=json:\n%s", logBuf.String())
	}

	// A binary-negotiated request logs proto=obp1.
	req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/marks", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeBinary)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary get: status %d", resp.StatusCode)
	}
	if !strings.Contains(logBuf.String(), "proto=obp1") {
		t.Errorf("access log missing proto=obp1:\n%s", logBuf.String())
	}

	// Exhaust a one-token global bucket: the second request sheds and its
	// log line carries the reason.
	srv.SetAdmission(AdmissionConfig{RatePerSec: 0.001, Burst: 1})
	sawShed := false
	for i := 0; i < 3; i++ {
		resp, err := ts.Client().Get(ts.URL + "/v1/sessions/marks")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			sawShed = true
		}
	}
	if !sawShed {
		t.Fatal("admission never shed with a one-token bucket")
	}
	if !strings.Contains(logBuf.String(), "shed=global_rate") {
		t.Errorf("access log missing shed=global_rate:\n%s", logBuf.String())
	}
}
