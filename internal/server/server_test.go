package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/erbench"
	"oasis/internal/session"
)

// client is a minimal typed client over the JSON API, shared by the tests.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			c.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, c.base+path, &buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestEndToEndConcurrentWorkers is the acceptance test: an in-process
// oasis-server, a session over a synthetic erbench pool, and concurrent
// worker goroutines labelling via batched propose/commit over HTTP. The
// final estimate must land within estTolerance of both the single-threaded
// Sampler.Run result at the same seed and budget and the pool's true F.
func TestEndToEndConcurrentWorkers(t *testing.T) {
	pool, err := erbench.BuildPool("cora", erbench.PoolConfig{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inner := pool.Pool.Internal()
	truth := func(i int) bool { return pool.TruthProb[i] >= 0.5 }

	// The posterior plug-in estimate is used on both sides because the
	// comparison must be robust to worker interleaving: the AIS ratio has
	// heavy-tailed weights at this budget (estimator stdev ≈ 0.05), while
	// the plug-in concentrates faster. The service's draw sequence still
	// depends on how the worker goroutines interleave, so its estimate is a
	// random variable with stdev ≈ 0.03 around this budget while the Run
	// reference is a single fixed draw from the same distribution (itself
	// 0.085 from the true F at this seed); estTolerance is ≈4σ of the
	// observed spread so the gate catches real divergence, not scheduling
	// luck — go test -shuffle=on -count=3 must pass it reliably.
	const estTolerance = 0.12
	const (
		budget  = 1500
		workers = 6
		batch   = 16
		seed    = 99
	)
	opts := oasis.Options{Strata: 20, Seed: seed, PosteriorEstimate: true}

	// Single-threaded reference at the same seed and budget.
	ref, err := oasis.NewSampler(pool.Pool, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Run(truth, budget)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(session.NewManager(session.ManagerOptions{})).Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	var created session.Status
	code := c.do("POST", "/v1/sessions", session.Config{
		ID:         "e2e",
		Scores:     inner.Scores,
		Preds:      inner.Preds,
		Calibrated: inner.Probabilistic,
		Threshold:  inner.Threshold,
		Options:    opts,
		Budget:     budget,
		LeaseTTL:   time.Minute,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spins := 0; spins < 50*budget; spins++ {
				var pr ProposeResponse
				if code := c.do("GET", fmt.Sprintf("/v1/sessions/e2e/propose?n=%d", batch), nil, &pr); code != http.StatusOK {
					t.Errorf("propose: status %d", code)
					return
				}
				if pr.Exhausted {
					return
				}
				if len(pr.Proposals) == 0 {
					continue // everything currently leased to other workers
				}
				req := LabelsRequest{}
				for _, p := range pr.Proposals {
					req.Labels = append(req.Labels, Label{Pair: p.Pair, Label: truth(p.Pair)})
				}
				var lr LabelsResponse
				if code := c.do("POST", "/v1/sessions/e2e/labels", req, &lr); code != http.StatusOK {
					t.Errorf("labels: status %d", code)
					return
				}
				if lr.Committed != len(req.Labels) {
					t.Errorf("committed %d of %d labels", lr.Committed, len(req.Labels))
					return
				}
			}
			t.Error("worker spun out before the budget was exhausted")
		}()
	}
	wg.Wait()

	var st session.Status
	if code := c.do("GET", "/v1/sessions/e2e/estimate", nil, &st); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	if st.LabelsCommitted != budget {
		t.Fatalf("labels committed = %d, want %d", st.LabelsCommitted, budget)
	}
	if st.Estimate == nil {
		t.Fatal("estimate undefined after full budget")
	}
	if diff := math.Abs(*st.Estimate - res.FMeasure); diff > estTolerance {
		t.Fatalf("service F̂ = %v vs Run F̂ = %v: |diff| = %v > %v (true F = %v)",
			*st.Estimate, res.FMeasure, diff, estTolerance, pool.TrueF(0.5))
	}
	if diff := math.Abs(*st.Estimate - pool.TrueF(0.5)); diff > estTolerance {
		t.Fatalf("service F̂ = %v vs true F = %v: |diff| = %v > %v",
			*st.Estimate, pool.TrueF(0.5), diff, estTolerance)
	}
	t.Logf("service F̂ = %.4f, Run F̂ = %.4f, true F = %.4f (%d labels)",
		*st.Estimate, res.FMeasure, pool.TrueF(0.5), st.LabelsCommitted)

	if code := c.do("DELETE", "/v1/sessions/e2e", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := c.do("GET", "/v1/sessions/e2e", nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
}

// TestServerCRUDAndErrors covers the non-happy paths: bad bodies, unknown
// sessions, expired-label reporting and listing.
func TestServerCRUDAndErrors(t *testing.T) {
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: time.Minute})
	ts := httptest.NewServer(New(mgr).Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	if code := c.do("GET", "/v1/sessions/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions", session.Config{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty pool: status %d", code)
	}

	scores := []float64{0.9, 0.8, 0.2, 0.1, 0.7, 0.3}
	preds := []bool{true, true, false, false, true, false}
	var st session.Status
	if code := c.do("POST", "/v1/sessions", session.Config{
		ID: "crud", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 2, Seed: 1},
	}, &st); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if st.PoolSize != 6 || st.InitialEstimate == nil {
		t.Fatalf("unexpected created status: %+v", st)
	}

	var list struct {
		Sessions []session.Status `json:"sessions"`
	}
	if code := c.do("GET", "/v1/sessions", nil, &list); code != http.StatusOK || len(list.Sessions) != 1 {
		t.Fatalf("list: status %d, %d sessions", code, len(list.Sessions))
	}

	// Committing a never-proposed pair reports "expired", commits nothing.
	var lr LabelsResponse
	if code := c.do("POST", "/v1/sessions/crud/labels", LabelsRequest{
		Labels: []Label{{Pair: 0, Label: true}},
	}, &lr); code != http.StatusOK {
		t.Fatalf("labels: status %d", code)
	}
	if lr.Committed != 0 || lr.Results[0].Status != "expired" {
		t.Fatalf("unexpected label result: %+v", lr)
	}

	if code := c.do("GET", "/v1/sessions/crud/propose?n=0", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("propose n=0: status %d", code)
	}

	// A leased pair commits once ("ok"); the re-answer is a "duplicate" and
	// does not inflate the committed count.
	var pr ProposeResponse
	if code := c.do("GET", "/v1/sessions/crud/propose?n=1", nil, &pr); code != http.StatusOK || len(pr.Proposals) != 1 {
		t.Fatalf("propose: status %d, %d proposals", code, len(pr.Proposals))
	}
	pair := pr.Proposals[0].Pair
	for attempt, want := range []string{"ok", "duplicate"} {
		if code := c.do("POST", "/v1/sessions/crud/labels", LabelsRequest{
			Labels: []Label{{Pair: pair, Label: true}},
		}, &lr); code != http.StatusOK {
			t.Fatalf("labels attempt %d: status %d", attempt, code)
		}
		wantCommitted := 0
		if want == "ok" {
			wantCommitted = 1
		}
		if lr.Results[0].Status != want || lr.Committed != wantCommitted {
			t.Fatalf("attempt %d: got %+v, want status %q committed %d", attempt, lr, want, wantCommitted)
		}
	}
	if code := c.do("GET", "/v1/sessions/crud/estimate", nil, &st); code != http.StatusOK || st.LabelsCommitted != 1 {
		t.Fatalf("after duplicate: status %d, labels %d", code, st.LabelsCommitted)
	}
}

// TestHealthAndStats covers the ops endpoints in snapshot-only mode (no
// WAL): healthz is "ok" and stats aggregates sessions — with the per-shard
// breakdown summing to the totals — without a wal block. The WAL-enabled
// variants are exercised by the crash-recovery end-to-end test in
// cmd/oasis-server.
func TestHealthAndStats(t *testing.T) {
	mgr := session.NewManager(session.ManagerOptions{Shards: 4})
	ts := httptest.NewServer(New(mgr).Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	var health HealthResponse
	if code := c.do("GET", "/healthz", nil, &health); code != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: status %d, %+v", code, health)
	}

	scores := []float64{0.9, 0.8, 0.2, 0.1, 0.7, 0.3}
	preds := []bool{true, true, false, false, true, false}
	if code := c.do("POST", "/v1/sessions", session.Config{
		ID: "stats", Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 2, Seed: 1},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var pr ProposeResponse
	if code := c.do("GET", "/v1/sessions/stats/propose?n=2", nil, &pr); code != http.StatusOK || len(pr.Proposals) != 2 {
		t.Fatalf("propose: status %d, %d proposals", code, len(pr.Proposals))
	}
	var lr LabelsResponse
	if code := c.do("POST", "/v1/sessions/stats/labels", LabelsRequest{
		Labels: []Label{{Pair: pr.Proposals[0].Pair, Label: true}},
	}, &lr); code != http.StatusOK || lr.Committed != 1 {
		t.Fatalf("labels: status %d, committed %d", code, lr.Committed)
	}

	var stats StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Sessions != 1 || stats.LabelsCommitted != 1 || stats.PendingProposals != 1 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("stats has %d shard entries, want 4", len(stats.Shards))
	}
	var sess, labels, pending int
	for i, ss := range stats.Shards {
		if ss.Shard != i {
			t.Fatalf("shard entry %d labelled %d", i, ss.Shard)
		}
		sess += ss.Sessions
		labels += ss.LabelsCommitted
		pending += ss.PendingProposals
	}
	if sess != stats.Sessions || labels != stats.LabelsCommitted || pending != stats.PendingProposals {
		t.Fatalf("per-shard stats (%d/%d/%d) do not sum to the totals: %+v", sess, labels, pending, stats)
	}
	if stats.WAL != nil {
		t.Fatalf("stats reported a WAL block without a journal: %+v", stats.WAL)
	}
}

// TestServeGracefulShutdown checks Serve comes up, answers, and drains on
// context cancellation.
func TestServeGracefulShutdown(t *testing.T) {
	mgr := session.NewManager(session.ManagerOptions{})
	srv := New(mgr)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, "127.0.0.1:0", ready) }()
	addr := <-ready

	resp, err := http.Get("http://" + addr + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}
