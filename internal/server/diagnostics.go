package server

// Convergence-diagnostics surface: GET /v1/sessions/{id}/diagnostics serves
// one session's full diagnostics payload (downsampled series, per-stratum
// health, alarm state), and GET /debug/dashboard renders a zero-dependency
// HTML overview — one row per live session with inline SVG sparklines of
// the estimate ± CI band and the ESS ratio. Everything is rendered
// server-side from the same bounded rings the JSON endpoint reads; the page
// needs no JavaScript, no external assets, and is safe to hit at any rate.

import (
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strings"

	"oasis/internal/diag"
	"oasis/internal/session"
)

// getDiagnostics serves one session's convergence diagnostics. Like the
// status endpoints it never mutates session state, so scrapers and
// dashboards may poll it freely.
func (s *Server) getDiagnostics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, sess.Diagnostics())
}

// sparkDims are the fixed sparkline dimensions (CSS pixels).
const (
	sparkW = 240
	sparkH = 48
	sparkP = 3 // inner padding so strokes are not clipped at the extremes
)

// sparkXY maps a point index and value into sparkline coordinates.
func sparkXY(i, n int, v, lo, hi float64) (float64, float64) {
	x := float64(sparkP)
	if n > 1 {
		x += float64(i) / float64(n-1) * (sparkW - 2*sparkP)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	y := sparkH - sparkP - (v-lo)/span*(sparkH-2*sparkP)
	return x, y
}

// sparkPath appends "x,y" pairs for every finite value to a polyline
// points attribute, skipping NaN gaps.
func sparkPath(vals []float64, lo, hi float64) string {
	var b strings.Builder
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		x, y := sparkXY(i, len(vals), v, lo, hi)
		fmt.Fprintf(&b, "%.1f,%.1f ", x, y)
	}
	return strings.TrimSpace(b.String())
}

// estimateSpark renders the estimate sparkline with its CI band: the band
// polygon walks the upper bound left to right and the lower bound back.
func estimateSpark(pts []diag.Point) string {
	est := make([]float64, len(pts))
	upper := make([]float64, len(pts))
	lower := make([]float64, len(pts))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, p := range pts {
		e, v := float64(p.Estimate), float64(p.Variance)
		est[i] = e
		upper[i], lower[i] = math.NaN(), math.NaN()
		if !math.IsNaN(e) {
			if math.IsNaN(v) || v < 0 || p.Terms <= 0 {
				upper[i], lower[i] = e, e
			} else {
				half := 1.96 * math.Sqrt(v/float64(p.Terms))
				upper[i], lower[i] = e+half, e-half
			}
			lo = math.Min(lo, lower[i])
			hi = math.Max(hi, upper[i])
		}
	}
	if math.IsInf(lo, 1) { // nothing finite to draw
		lo, hi = 0, 1
	}
	var band strings.Builder
	for i := range pts {
		if math.IsNaN(upper[i]) {
			continue
		}
		x, y := sparkXY(i, len(pts), upper[i], lo, hi)
		fmt.Fprintf(&band, "%.1f,%.1f ", x, y)
	}
	for i := len(pts) - 1; i >= 0; i-- {
		if math.IsNaN(lower[i]) {
			continue
		}
		x, y := sparkXY(i, len(pts), lower[i], lo, hi)
		fmt.Fprintf(&band, "%.1f,%.1f ", x, y)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="estimate with confidence band">`, sparkW, sparkH, sparkW, sparkH)
	if band.Len() > 0 {
		fmt.Fprintf(&b, `<polygon points="%s" fill="#9ecae1" fill-opacity="0.45" stroke="none"/>`, strings.TrimSpace(band.String()))
	}
	if path := sparkPath(est, lo, hi); path != "" {
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#1f77b4" stroke-width="1.5"/>`, path)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// essSpark renders the ESS-ratio sparkline on a fixed [0,1] scale with the
// alarm thresholds drawn as horizontal rules.
func essSpark(pts []diag.Point, th diag.Thresholds) string {
	vals := make([]float64, len(pts))
	for i, p := range pts {
		vals[i] = float64(p.ESSRatio)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="spark" width="%d" height="%d" viewBox="0 0 %d %d" role="img" aria-label="ESS ratio">`, sparkW, sparkH, sparkW, sparkH)
	for _, t := range []struct {
		v float64
		c string
	}{{th.ESSDegraded, "#e6a23c"}, {th.ESSDegenerate, "#d62728"}} {
		if t.v <= 0 || t.v >= 1 {
			continue
		}
		_, y := sparkXY(0, 1, t.v, 0, 1)
		fmt.Fprintf(&b, `<line x1="0" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="3,3"/>`, y, sparkW, y, t.c)
	}
	if path := sparkPath(vals, 0, 1); path != "" {
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#2ca02c" stroke-width="1.5"/>`, path)
	}
	b.WriteString(`</svg>`)
	return b.String()
}

var stateColors = map[string]string{
	"ok":         "#2ca02c",
	"degraded":   "#e6a23c",
	"degenerate": "#d62728",
}

// dashboard renders the convergence overview. It reads every live session's
// diagnostics (shard by shard, never stopping the world) and emits a static
// HTML page: no scripts, no external assets, inline SVG only.
func (s *Server) dashboard(w http.ResponseWriter, r *http.Request) {
	var all []session.Diagnostics
	for shard := 0; shard < s.mgr.Shards(); shard++ {
		for _, sess := range s.mgr.Sessions(shard) {
			all = append(all, sess.Diagnostics())
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>OASIS convergence dashboard</title>
<style>
body{font:14px/1.4 system-ui,sans-serif;margin:2em;color:#222}
table{border-collapse:collapse}
th,td{padding:.4em .9em;text-align:left;border-bottom:1px solid #ddd;vertical-align:middle}
th{font-weight:600;border-bottom:2px solid #999}
.state{font-weight:600}
.num{font-variant-numeric:tabular-nums}
.empty{color:#888;margin-top:2em}
</style></head><body>
<h1>OASIS convergence dashboard</h1>
`)
	fmt.Fprintf(&b, "<p>%d live session(s). Sparklines show the downsampled per-session series: estimate with 95%% CI band, and ESS ratio on [0,1] with alarm thresholds.</p>\n", len(all))
	if len(all) == 0 {
		b.WriteString(`<p class="empty">No live sessions.</p>`)
	} else {
		b.WriteString("<table>\n<tr><th>session</th><th>method</th><th>state</th><th>labels</th><th>estimate</th><th>ESS ratio</th><th>estimate &plusmn; CI</th><th>ESS ratio series</th></tr>\n")
		for _, d := range all {
			color := stateColors[d.State]
			if color == "" {
				color = "#222"
			}
			est, essR := "&mdash;", "&mdash;"
			if f := float64(d.Estimate); !math.IsNaN(f) {
				est = fmt.Sprintf("%.4f", f)
			}
			if f := float64(d.ESSRatio); !math.IsNaN(f) {
				essR = fmt.Sprintf("%.3f", f)
			}
			fmt.Fprintf(&b, `<tr><td><code>%s</code></td><td>%s</td><td class="state" style="color:%s">%s</td><td class="num">%d</td><td class="num">%s</td><td class="num">%s</td><td>%s</td><td>%s</td></tr>`+"\n",
				html.EscapeString(d.ID), html.EscapeString(string(d.Method)), color, html.EscapeString(d.State),
				d.LabelsCommitted, est, essR,
				estimateSpark(d.Series), essSpark(d.Series, d.Thresholds))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}
