package server

// HTTP coverage for the content-addressed pool endpoints: upload (JSON and
// binary columnar), dedup, shared refcounts across sessions, delete
// semantics, the disabled-store 404s, and the request-body cap (413).

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"oasis"
	"oasis/internal/poolstore"
	"oasis/internal/rng"
	"oasis/internal/session"
)

// poolColumns builds a small synthetic pool.
func poolColumns(n int, seed uint64) (scores []float64, preds []bool) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	for i := range scores {
		u := r.Float64()
		scores[i] = u * u
		preds[i] = scores[i] >= 0.5
	}
	return scores, preds
}

// newPoolServer starts an httptest server with a pool store attached.
func newPoolServer(t *testing.T) (*client, *Server, *poolstore.Store) {
	t.Helper()
	store, err := poolstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(session.NewManager(session.ManagerOptions{Pools: store}))
	srv.SetPools(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &client{t: t, base: ts.URL, http: ts.Client()}, srv, store
}

func TestPoolUploadAndSharedSessions(t *testing.T) {
	c, _, store := newPoolServer(t)
	scores, preds := poolColumns(1500, 7)

	// Upload once.
	var created PoolResponse
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: scores, Preds: preds}, &created); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	if created.Pairs != 1500 || !created.Created || !poolstore.ValidID(created.PoolID) {
		t.Fatalf("upload response = %+v", created)
	}
	// Re-upload: idempotent dedup hit, 200, same address.
	var again PoolResponse
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: scores, Preds: preds}, &again); code != http.StatusOK {
		t.Fatalf("re-upload: status %d", code)
	}
	if again.PoolID != created.PoolID || again.Created {
		t.Fatalf("re-upload response = %+v", again)
	}

	// N sessions by reference: one shared copy, refcount N.
	const n = 5
	for i := 0; i < n; i++ {
		cfg := session.Config{
			ID: fmt.Sprintf("s%d", i), PoolID: created.PoolID, Calibrated: true,
			Options: oasis.Options{Strata: 8, Seed: uint64(i)},
		}
		var st session.Status
		if code := c.do("POST", "/v1/sessions", cfg, &st); code != http.StatusCreated {
			t.Fatalf("create session %d: status %d", i, code)
		}
		if st.PoolID != created.PoolID || st.PoolSize != 1500 {
			t.Fatalf("session status = %+v", st)
		}
	}
	var info PoolResponse
	if code := c.do("GET", "/v1/pools/"+created.PoolID, nil, &info); code != http.StatusOK {
		t.Fatalf("get pool: status %d", code)
	}
	if info.Refs != n {
		t.Fatalf("pool refs = %d, want %d", info.Refs, n)
	}
	var stats StatsResponse
	if code := c.do("GET", "/v1/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.Pools == nil || stats.Pools.Pools != 1 || stats.Pools.Refs != n || stats.Pools.Loaded != 1 {
		t.Fatalf("stats.Pools = %+v, want 1 pool, %d refs, 1 loaded copy", stats.Pools, n)
	}

	// Deleting the pool while referenced: 409. After the sessions go: 204.
	if code := c.do("DELETE", "/v1/pools/"+created.PoolID, nil, nil); code != http.StatusConflict {
		t.Fatalf("delete of referenced pool: status %d", code)
	}
	for i := 0; i < n; i++ {
		if code := c.do("DELETE", fmt.Sprintf("/v1/sessions/s%d", i), nil, nil); code != http.StatusNoContent {
			t.Fatalf("delete session %d: status %d", i, code)
		}
	}
	if got := store.Refs(created.PoolID); got != 0 {
		t.Fatalf("refs after deleting all sessions = %d", got)
	}
	if code := c.do("DELETE", "/v1/pools/"+created.PoolID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete of unreferenced pool: status %d", code)
	}
	if code := c.do("GET", "/v1/pools/"+created.PoolID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get of deleted pool: status %d", code)
	}
}

func TestPoolBinaryUpload(t *testing.T) {
	c, _, _ := newPoolServer(t)
	scores, preds := poolColumns(900, 9)
	encoded, err := poolstore.Encode(scores, preds)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Post(c.base+"/v1/pools", "application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: status %d", resp.StatusCode)
	}
	// The JSON form of the same columns dedups onto the binary upload.
	var again PoolResponse
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: scores, Preds: preds}, &again); code != http.StatusOK {
		t.Fatalf("JSON re-upload after binary: status %d", code)
	}
	// Corrupt binary: 400.
	encoded[len(encoded)-1] ^= 1
	resp2, err := c.http.Post(c.base+"/v1/pools", "application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt binary upload: status %d", resp2.StatusCode)
	}
}

// TestPoolDeleteBarrier: with a barrier installed (snapshot mode), the
// hook runs before the removal — and a failing barrier aborts the delete.
func TestPoolDeleteBarrier(t *testing.T) {
	c, srv, store := newPoolServer(t)
	scores, preds := poolColumns(50, 11)
	var up PoolResponse
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: scores, Preds: preds}, &up); code != http.StatusCreated {
		t.Fatalf("upload: status %d", code)
	}
	barrierRan := 0
	srv.SetPoolDeleteBarrier(func() error {
		barrierRan++
		if store.Refs(up.PoolID) != 0 {
			t.Error("barrier must run while the pool still exists")
		}
		if _, err := store.Get(up.PoolID); err != nil {
			t.Error("barrier ran after the pool was removed")
		}
		return nil
	})
	if code := c.do("DELETE", "/v1/pools/"+up.PoolID, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if barrierRan != 1 {
		t.Fatalf("barrier ran %d times, want 1", barrierRan)
	}
	// A failing barrier aborts the delete.
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: scores, Preds: preds}, &up); code != http.StatusCreated {
		t.Fatalf("re-upload: status %d", code)
	}
	srv.SetPoolDeleteBarrier(func() error { return fmt.Errorf("disk full") })
	if code := c.do("DELETE", "/v1/pools/"+up.PoolID, nil, nil); code != http.StatusInternalServerError {
		t.Fatalf("delete with failing barrier: status %d", code)
	}
	if _, err := store.Get(up.PoolID); err != nil {
		t.Fatal("failing barrier did not abort the removal")
	}
}

func TestPoolEndpointsDisabledWithoutStore(t *testing.T) {
	ts := httptest.NewServer(New(session.NewManager(session.ManagerOptions{})).Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/pools"},
		{"GET", "/v1/pools"},
		{"GET", "/v1/pools/xyz"},
		{"DELETE", "/v1/pools/xyz"},
	} {
		if code := c.do(probe.method, probe.path, nil, nil); code != http.StatusNotFound {
			t.Fatalf("%s %s without a store: status %d", probe.method, probe.path, code)
		}
	}
	// Sessions referencing a pool fail cleanly too.
	cfg := session.Config{PoolID: strings.Repeat("ab", 32)}
	if code := c.do("POST", "/v1/sessions", cfg, nil); code != http.StatusBadRequest {
		t.Fatalf("poolref create without a store: status %d", code)
	}
}

// TestRequestBodyCap413 covers the max-body satellite: every POST endpoint
// — session create, labels, pool upload in both encodings — must answer an
// over-limit body with 413, and a within-limit body must still work.
func TestRequestBodyCap413(t *testing.T) {
	store, err := poolstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := session.NewManager(session.ManagerOptions{Pools: store})
	srv := New(mgr)
	srv.SetPools(store)
	srv.SetMaxBodyBytes(16 << 10) // 16 KiB for the test
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}

	// A small session under the cap works.
	scores, preds := poolColumns(100, 3)
	var st session.Status
	if code := c.do("POST", "/v1/sessions", session.Config{ID: "small", Scores: scores, Preds: preds, Calibrated: true}, &st); code != http.StatusCreated {
		t.Fatalf("small create: status %d", code)
	}

	// An oversized inline create: 413, not an OOM and not a 400.
	bigScores, bigPreds := poolColumns(20_000, 4)
	if code := c.do("POST", "/v1/sessions", session.Config{ID: "big", Scores: bigScores, Preds: bigPreds}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized create: status %d", code)
	}
	// Oversized JSON pool upload: 413.
	if code := c.do("POST", "/v1/pools", PoolUploadRequest{Scores: bigScores, Preds: bigPreds}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized pool upload: status %d", code)
	}
	// Oversized binary pool upload: 413.
	encoded, err := poolstore.Encode(bigScores, bigPreds)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.http.Post(c.base+"/v1/pools", "application/octet-stream", bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary upload: status %d", resp.StatusCode)
	}
	// Oversized labels body: 413.
	labels := LabelsRequest{}
	for i := 0; i < 3000; i++ {
		labels.Labels = append(labels.Labels, Label{Pair: i, Label: true})
	}
	if code := c.do("POST", "/v1/sessions/small/labels", labels, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized labels: status %d", code)
	}
	// The server is still healthy afterwards.
	if code := c.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz after 413s: status %d", code)
	}
}
