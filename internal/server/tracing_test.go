package server

import (
	"bytes"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"oasis"
	"oasis/internal/obs"
	"oasis/internal/session"
	"oasis/internal/trace"
)

// newTracingTestServer boots an in-process server with tracing always on
// and the access log captured, over an in-memory manager with one small
// pool's worth of sessions available.
func newTracingTestServer(t *testing.T, opts trace.Options) (*httptest.Server, *Server, *trace.Collector, *bytes.Buffer) {
	t.Helper()
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: time.Minute})
	srv := New(mgr)
	col := trace.NewCollector(opts)
	srv.EnableTracing(col)
	var logBuf bytes.Buffer
	srv.SetAccessLog(log.New(&logBuf, "", 0), opts.Slow)
	reg := obs.NewRegistry()
	srv.EnableMetrics(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, col, &logBuf
}

func createTracedSession(t *testing.T, c *client, id string) {
	t.Helper()
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.4, 0.3, 0.2, 0.1}
	preds := []bool{true, true, true, true, false, false, false, false}
	if code := c.do("POST", "/v1/sessions", session.Config{
		ID: id, Scores: scores, Preds: preds, Calibrated: true,
		Options: oasis.Options{Strata: 2, Seed: 7},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
}

var requestIDRe = regexp.MustCompile(`^[0-9a-f]{16}-\d{6}$`)

// TestTracingMiddlewareRoundTrip drives one traced propose through the
// full server and checks the whole contract at once: the response carries
// X-Request-ID and a parseable traceparent, the trace is retrievable by
// that ID from /debug/traces/{id} with server- and session-layer spans,
// the listing includes it, and the access-log line carries trace=<id>.
func TestTracingMiddlewareRoundTrip(t *testing.T) {
	ts, _, _, logBuf := newTracingTestServer(t, trace.Options{SampleRate: 1})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "traced")

	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/traced/propose?n=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("propose: status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if !requestIDRe.MatchString(reqID) {
		t.Fatalf("X-Request-ID %q does not match <16-hex-boot>-<seq>", reqID)
	}
	tp := resp.Header.Get("Traceparent")
	tid, _, flags, err := trace.ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("response traceparent %q: %v", tp, err)
	}
	if flags&trace.FlagSampled == 0 {
		t.Fatalf("response traceparent %q not flagged sampled", tp)
	}

	var tj trace.TraceJSON
	if code := c.do("GET", "/debug/traces/"+tid.String(), nil, &tj); code != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s: status %d", tid, code)
	}
	if tj.Route != "GET /v1/sessions/{id}/propose" || tj.RequestID != reqID || tj.Status != http.StatusOK {
		t.Fatalf("trace header wrong: %+v", tj)
	}
	layers := map[string]bool{}
	for _, sp := range tj.Spans {
		layers[sp.Layer] = true
	}
	for _, want := range []string{"server", "session", "sampler"} {
		if !layers[want] {
			t.Errorf("trace missing %q-layer span; got layers %v", want, layers)
		}
	}

	var list TracesResponse
	if code := c.do("GET", "/debug/traces", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	found := false
	for _, s := range list.Traces {
		if s.ID == tid.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("trace %s missing from /debug/traces listing (%d rows)", tid, len(list.Traces))
	}
	if list.Stats.Recorded == 0 {
		t.Errorf("collector stats report zero recorded traces: %+v", list.Stats)
	}

	if !strings.Contains(logBuf.String(), "trace="+tid.String()) {
		t.Errorf("access log missing trace=%s:\n%s", tid, logBuf.String())
	}
	if !strings.Contains(logBuf.String(), "id="+reqID) {
		t.Errorf("access log missing id=%s:\n%s", reqID, logBuf.String())
	}
}

// TestTracingInboundTraceparent covers the three inbound cases: a sampled
// header forces recording under the caller's trace ID (with the caller's
// span as parent), an explicitly-unsampled header suppresses recording
// even at sample rate 1, and a malformed header is ignored (the server
// decides independently and mints its own ID).
func TestTracingInboundTraceparent(t *testing.T) {
	ts, _, _, _ := newTracingTestServer(t, trace.Options{SampleRate: 1})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "inbound")

	get := func(traceparent string) *http.Response {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/inbound", nil)
		if err != nil {
			t.Fatal(err)
		}
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp
	}

	// Sampled inbound header: recorded under the caller's IDs.
	inTID := "4bf92f3577b34da6a3ce929d0e0e4736"
	inSID := "00f067aa0ba902b7"
	resp := get("00-" + inTID + "-" + inSID + "-01")
	outTID, _, _, err := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("response traceparent: %v", err)
	}
	if outTID.String() != inTID {
		t.Fatalf("trace ID not propagated: got %s, want %s", outTID, inTID)
	}
	var tj trace.TraceJSON
	if code := c.do("GET", "/debug/traces/"+inTID, nil, &tj); code != http.StatusOK {
		t.Fatalf("forced trace not retained: status %d", code)
	}
	if tj.ParentSpanID != inSID {
		t.Fatalf("parent span: got %q, want %q", tj.ParentSpanID, inSID)
	}

	// Explicitly-unsampled inbound header: not recorded, no traceparent out.
	offTID := "aaaabbbbccccddddeeeeffff00001111"
	resp = get("00-" + offTID + "-00f067aa0ba902b7-00")
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Fatalf("unsampled request returned traceparent %q", got)
	}
	if code := c.do("GET", "/debug/traces/"+offTID, nil, nil); code != http.StatusNotFound {
		t.Fatalf("unsampled trace retained: status %d", code)
	}

	// Malformed header: ignored; at rate 1 the server samples with its own ID.
	badTID := "ffffeeeeddddccccbbbbaaaa99998888"
	resp = get("00-" + badTID + "-00f067aa0ba902b7-zz")
	outTID, _, _, err = trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if err != nil {
		t.Fatalf("malformed-inbound response traceparent: %v", err)
	}
	if outTID.String() == badTID {
		t.Fatalf("malformed inbound trace ID %s was trusted", badTID)
	}
}

// TestTracingRequestIDHeader checks the inbound X-Request-ID contract: a
// clean client ID is honored end to end (header echo, access log, trace),
// an unsafe one is replaced with a server-assigned ID.
func TestTracingRequestIDHeader(t *testing.T) {
	ts, _, _, _ := newTracingTestServer(t, trace.Options{SampleRate: 1})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "reqid")

	send := func(clientID string) string {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/reqid", nil)
		if err != nil {
			t.Fatal(err)
		}
		if clientID != "" {
			req.Header.Set("X-Request-ID", clientID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}

	if got := send("worker-7.retry_2"); got != "worker-7.retry_2" {
		t.Errorf("clean client request ID not honored: got %q", got)
	}
	if got := send("bad id=log injection"); !requestIDRe.MatchString(got) {
		t.Errorf("unsafe client ID not replaced: got %q", got)
	}
	if got := send(strings.Repeat("x", 65)); !requestIDRe.MatchString(got) {
		t.Errorf("oversized client ID not replaced: got %q", got)
	}
}

// TestTracingSlowRetention checks tail retention and the slow-request
// counter: with a zero-latency threshold every request is slow, so traces
// survive ring churn and oasis_http_slow_requests_total counts by route.
func TestTracingSlowRetention(t *testing.T) {
	ts, _, col, logBuf := newTracingTestServer(t, trace.Options{SampleRate: 1, Slow: time.Nanosecond})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "slow")

	for i := 0; i < 3; i++ {
		if code := c.do("GET", "/v1/sessions/slow", nil, nil); code != http.StatusOK {
			t.Fatalf("lookup: status %d", code)
		}
	}
	st := col.Stats()
	if st.RetainedSlow < 3 {
		t.Fatalf("retained slow = %d, want >= 3 (stats %+v)", st.RetainedSlow, st)
	}
	if !strings.Contains(logBuf.String(), "slow=true") {
		t.Errorf("access log missing slow=true marker:\n%s", logBuf.String())
	}

	body := scrape(t, ts)
	if !strings.Contains(body, "oasis_http_slow_requests_total") {
		t.Fatalf("metrics missing oasis_http_slow_requests_total:\n%s", body)
	}
	fams := parseExposition(t, body)
	if got := sumFamily(fams["oasis_http_slow_requests_total"]); got < 3 {
		t.Errorf("oasis_http_slow_requests_total = %v, want >= 3", got)
	}
	if got := sumFamily(fams["oasis_trace_recorded_total"]); got < 3 {
		t.Errorf("oasis_trace_recorded_total = %v, want >= 3", got)
	}
}

// TestTracingConcurrentDebugReads is the server-level companion to the
// trace package's ring stress test (run it under -race): worker goroutines
// hammer propose/commit while readers drain /debug/traces and re-fetch
// every listed trace, so exports race against ring publication.
func TestTracingConcurrentDebugReads(t *testing.T) {
	ts, _, _, _ := newTracingTestServer(t, trace.Options{SampleRate: 1, Recent: 16, Retained: 32})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "stress")

	const (
		workers  = 4
		requests = 40
	)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			wc := &client{t: t, base: ts.URL, http: ts.Client()}
			for i := 0; i < requests; i++ {
				var pr ProposeResponse
				if code := wc.do("GET", "/v1/sessions/stress/propose?n=1", nil, &pr); code != http.StatusOK {
					t.Errorf("propose: status %d", code)
					return
				}
				if len(pr.Proposals) == 0 {
					continue
				}
				lr := LabelsRequest{Labels: []Label{{Pair: pr.Proposals[0].Pair, Label: true}}}
				if code := wc.do("POST", "/v1/sessions/stress/labels", lr, nil); code != http.StatusOK {
					t.Errorf("labels: status %d", code)
					return
				}
			}
		}()
	}
	for rdr := 0; rdr < 2; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			rc := &client{t: t, base: ts.URL, http: ts.Client()}
			for {
				select {
				case <-stop:
					return
				default:
				}
				var list TracesResponse
				if code := rc.do("GET", "/debug/traces", nil, &list); code != http.StatusOK {
					t.Errorf("debug/traces: status %d", code)
					return
				}
				for _, s := range list.Traces {
					var tj trace.TraceJSON
					if code := rc.do("GET", "/debug/traces/"+s.ID, nil, &tj); code != http.StatusOK && code != http.StatusNotFound {
						t.Errorf("debug/traces/%s: status %d", s.ID, code)
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}

// TestTracingDisabledUntouched pins the no-tracing fast path: without a
// collector there is no /debug/traces route and no traceparent header.
func TestTracingDisabledUntouched(t *testing.T) {
	mgr := session.NewManager(session.ManagerOptions{DefaultLeaseTTL: time.Minute})
	ts := httptest.NewServer(New(mgr).Handler())
	defer ts.Close()
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	createTracedSession(t, c, "plain")

	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/plain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Errorf("traceparent %q on an untraced server", got)
	}
	if code := c.do("GET", "/debug/traces", nil, nil); code != http.StatusNotFound {
		t.Errorf("/debug/traces registered without tracing: status %d", code)
	}
}

// TestTracingBadTraceIDRequests pins the /debug/traces/{id} error paths.
func TestTracingBadTraceIDRequests(t *testing.T) {
	ts, _, _, _ := newTracingTestServer(t, trace.Options{SampleRate: -1})
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	for _, id := range []string{"zz", strings.Repeat("0", 32), strings.Repeat("a", 31)} {
		if code := c.do("GET", "/debug/traces/"+id, nil, nil); code != http.StatusBadRequest {
			t.Errorf("id %q: status %d, want 400", id, code)
		}
	}
	if code := c.do("GET", "/debug/traces/"+fmt.Sprintf("%032x", 12345), nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown id: want 404")
	}
}
