package server

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"oasis/internal/obs"
	"oasis/internal/trace"
)

// serverMetrics is the HTTP layer's instrumentation: one in-flight gauge
// plus, per registered route, a latency histogram and status-class
// counters. Routes are registered once (Handler wraps each handler at
// registration, since ServeMux does not expose the matched pattern to
// outer middleware) and reused if Handler is built again.
type serverMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge

	mu     sync.Mutex
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	seconds *obs.Histogram
	slow    *obs.Counter
	classes [5]*obs.Counter // index (status/100)-1: 1xx..5xx
	// disconnects counts client-disconnect dispositions (499) separately
	// from the 4xx class, so a hang-up storm does not read as client errors.
	disconnects *obs.Counter
}

func (m *serverMetrics) route(pattern string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rm, ok := m.routes[pattern]; ok {
		return rm
	}
	rl := obs.Label{Name: "route", Value: pattern}
	rm := &routeMetrics{
		seconds: m.reg.Histogram("oasis_http_request_seconds", "HTTP request latency by route.", nil, rl),
		slow:    m.reg.Counter("oasis_http_slow_requests_total", "HTTP requests at or above the slow-request threshold, by route.", rl),
	}
	for i := range rm.classes {
		rm.classes[i] = m.reg.Counter("oasis_http_requests_total", "HTTP requests by route and status class.",
			rl, obs.Label{Name: "code", Value: strconv.Itoa(i+1) + "xx"})
	}
	rm.disconnects = m.reg.Counter("oasis_http_requests_total", "HTTP requests by route and status class.",
		rl, obs.Label{Name: "code", Value: "disconnect"})
	m.routes[pattern] = rm
	return rm
}

// EnableMetrics attaches a metrics registry: Handler() then serves it at
// GET /metrics, every route is instrumented (count by status class,
// latency histogram, in-flight gauge), and scrape-time collectors export
// the session shards, per-session sampler health, WAL lanes, pool store,
// and Go runtime. Call it before Handler(), after the journal and pool
// store are wired.
func (s *Server) EnableMetrics(reg *obs.Registry) {
	s.met = &serverMetrics{
		reg:      reg,
		inflight: reg.Gauge("oasis_http_in_flight_requests", "HTTP requests currently being served."),
		routes:   make(map[string]*routeMetrics),
	}
	s.registerCollectors(reg)
	s.wireAdmissionMetrics()
}

// SetVersion sets the version string advertised by /v1/stats and the
// oasis_build_info metric.
func (s *Server) SetVersion(v string) { s.version = v }

// SetAccessLog enables structured access logging: one line per request
// with a request ID (also returned in the X-Request-ID header), the
// matched route, status, byte count and duration. Requests at or above
// slow get a slow=true marker, and sampled requests carry their trace ID
// as trace=<id>. Call before Handler().
func (s *Server) SetAccessLog(l *log.Logger, slow time.Duration) {
	s.accessLog = l
	s.SetSlowRequest(slow)
}

// statusWriter captures the status code and body size a handler produced.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route's handler with request metrics, access
// logging and tracing. With none of the three enabled it returns the
// handler untouched — the hot path stays exactly as before. For an
// unsampled request under tracing, the only additions are one atomic
// sequence increment, one header compare, and a threshold compare — no
// allocations (the trace pointer stays nil end to end).
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	if s.met == nil && s.accessLog == nil && s.trc == nil {
		return h
	}
	var rm *routeMetrics
	if s.met != nil {
		rm = s.met.route(pattern)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.met != nil {
			s.met.inflight.Add(1)
		}
		sw := &statusWriter{ResponseWriter: w}
		var reqID string
		var seq uint64
		if s.accessLog != nil || s.trc != nil {
			seq = s.reqSeq.Add(1)
			if reqID = clientRequestID(r); reqID == "" {
				reqID = fmt.Sprintf("%s-%06d", s.bootID, seq)
			}
			sw.Header().Set("X-Request-ID", reqID)
		}
		tr := s.startTrace(r, seq)
		req := r
		if tr != nil {
			sw.Header().Set("Traceparent", trace.Traceparent(tr.ID(), tr.RootSpanID(), trace.FlagSampled))
			req = r.WithContext(trace.NewContext(r.Context(), tr))
		}
		hsp := tr.Start("server", "http.handle")
		if s.profLabels {
			pprof.Do(req.Context(), pprof.Labels("route", pattern), func(ctx context.Context) {
				h(sw, req.WithContext(ctx))
			})
		} else {
			h(sw, req)
		}
		hsp.End()
		d := time.Since(start)
		slow := s.slowReq > 0 && d >= s.slowReq
		if s.met != nil {
			s.met.inflight.Add(-1)
			if tr != nil {
				// A traced request stamps its bucket's exemplar, linking the
				// latency histogram back to the trace (OpenMetrics only).
				rm.seconds.ObserveExemplar(d.Seconds(), obs.Exemplar{
					Labels: []obs.Label{{Name: "trace_id", Value: tr.ID().String()}},
					TS:     float64(start.UnixNano()) / 1e9,
				})
			} else {
				rm.seconds.Observe(d.Seconds())
			}
			if sw.status() == StatusClientClosedRequest {
				rm.disconnects.Inc()
			} else if cls := sw.status()/100 - 1; cls >= 0 && cls < len(rm.classes) {
				rm.classes[cls].Inc()
			}
			if slow {
				rm.slow.Inc()
			}
		}
		if tr != nil {
			// The trace's root duration runs from its own clock start, not
			// the middleware's, so span offsets line up with the root span
			// without a prologue hole.
			tr.SetRequest(pattern, reqID, sw.status())
			s.trc.Finish(tr, tr.Elapsed(), sw.status() >= 500)
		}
		if s.accessLog != nil {
			marks := ""
			if slow {
				marks = " slow=true"
			}
			if tr != nil {
				marks += " trace=" + tr.ID().String()
			}
			// The wire protocol the request negotiated (binary body or
			// Accept), and the shed reason when admission rejected it.
			if wantsBinary(r) || isBinaryBody(r) {
				marks += " proto=obp1"
			} else {
				marks += " proto=json"
			}
			if reason := sw.Header().Get("X-Shed-Reason"); reason != "" {
				marks += " shed=" + reason
			}
			s.accessLog.Printf("http id=%s method=%s route=%q path=%q status=%d bytes=%d dur=%s remote=%s%s",
				reqID, r.Method, pattern, r.URL.Path, sw.status(), sw.bytes, d.Round(time.Microsecond), r.RemoteAddr, marks)
		}
	}
}

// metricsHandler serves the metrics exposition: OpenMetrics 1.0 (with
// histogram exemplars) when the scraper's Accept header asks for it,
// Prometheus text 0.0.4 otherwise.
func (s *Server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
		_, _ = s.met.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	_, _ = s.met.reg.WriteTo(w)
}

// registerCollectors declares the scrape-time families and hooks the
// collector that fills them from the live manager, journal, pool store
// and Go runtime on every scrape.
func (s *Server) registerCollectors(reg *obs.Registry) {
	reg.DeclareGauge("oasis_build_info", "Build information; the value is always 1.")
	reg.DeclareGauge("process_uptime_seconds", "Seconds since the server started.")
	reg.DeclareGauge("go_goroutines", "Live goroutines.")
	reg.DeclareGauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.")
	reg.DeclareGauge("go_memstats_heap_objects", "Allocated heap objects.")
	reg.DeclareCounter("go_gc_cycles_total", "Completed GC cycles.")
	reg.DeclareCounter("go_gc_pause_seconds_total", "Total GC stop-the-world pause time.")

	reg.DeclareGauge("oasis_sessions", "Live sessions per manager shard.")

	reg.DeclareGauge("oasis_sampler_estimate", "Current F-measure estimate per session (NaN while undefined).")
	reg.DeclareGauge("oasis_sampler_asymptotic_variance", "Delta-method asymptotic variance term of the estimate; Var(F) is roughly this over the term count.")
	reg.DeclareGauge("oasis_sampler_ess", "Effective sample size of the importance weights.")
	reg.DeclareGauge("oasis_sampler_ess_ratio", "ESS over estimator terms: near 1 healthy, near 0 weight degeneracy.")
	reg.DeclareGauge("oasis_sampler_terms", "Weighted terms folded into the estimator.")
	reg.DeclareGauge("oasis_sampler_labels_committed", "Distinct labels committed per session.")
	reg.DeclareGauge("oasis_sampler_label_budget", "Session label budget (0 = unlimited).")
	reg.DeclareGauge("oasis_sampler_pending_proposals", "Live leases per session.")
	reg.DeclareGauge("oasis_sampler_health_state", "Degeneracy alarm state per session: 0 ok, 1 degraded, 2 degenerate.")
	reg.DeclareGauge("oasis_diag_series_mem_bytes", "Fixed memory held by all diagnostics series rings together.")

	reg.DeclareGauge("oasis_wal_segments", "Live segment files per journal lane.")
	reg.DeclareGauge("oasis_wal_active_segment", "Segment index the lane is appending to.")
	reg.DeclareCounter("oasis_wal_records_appended_total", "Records appended per journal lane since open.")
	reg.DeclareCounter("oasis_wal_bytes_appended_total", "Bytes appended per journal lane since open.")
	reg.DeclareCounter("oasis_wal_syncs_total", "fsync(2) calls per journal lane since open.")
	reg.DeclareGauge("oasis_wal_last_lsn", "Most recent log sequence number per lane.")
	reg.DeclareCounter("oasis_wal_compactions_total", "Successful per-shard journal compactions since open.")
	reg.DeclareCounter("oasis_wal_replay_applied_total", "Events applied by WAL recovery at the last open.")
	reg.DeclareCounter("oasis_wal_replay_skipped_total", "Events skipped by WAL recovery at the last open.")
	reg.DeclareGauge("oasis_wal_replay_torn_bytes", "Torn tail bytes dropped by WAL recovery at the last open.")
	reg.DeclareGauge("oasis_wal_failed", "1 once the journal has fail-stopped, else 0.")

	reg.DeclareGauge("oasis_pool_store_pools", "Registered pools.")
	reg.DeclareGauge("oasis_pool_store_loaded", "Pools with resident columns.")
	reg.DeclareGauge("oasis_pool_store_refs", "Live session references across all pools.")
	reg.DeclareGauge("oasis_pool_store_bytes", "Encoded size of all registered pools.")
	reg.DeclareGauge("oasis_pool_store_resident_bytes", "Estimated resident memory cost of loaded pools (heap columns + mapped files + cached strata).")
	reg.DeclareGauge("oasis_pool_store_mapped", "Pools served zero-copy off a read-only mmap.")
	reg.DeclareGauge("oasis_pool_mmap_bytes", "Bytes of pool files currently memory-mapped (page-cache governed).")
	reg.DeclareGauge("oasis_pool_store_mem_budget_bytes", "Configured resident-memory budget (0 = unlimited).")
	reg.DeclareCounter("oasis_pool_store_puts_total", "Uploads that stored a new pool.")
	reg.DeclareCounter("oasis_pool_store_dedup_hits_total", "Uploads that landed on an already-stored pool.")
	reg.DeclareCounter("oasis_pool_store_loads_total", "On-demand pool loads from disk.")
	reg.DeclareCounter("oasis_pool_evictions_total", "Evictions of resident pool columns, by reason (idle sweep vs memory budget).")
	reg.DeclareCounter("oasis_pool_store_evictions_total", "Evictions of resident pool columns (all reasons).")
	reg.DeclareCounter("oasis_pool_store_sweeps_total", "Idle-sweep passes.")
	reg.DeclareCounter("oasis_pool_store_removes_total", "Pools deleted.")
	reg.DeclareCounter("oasis_pool_strata_cache_hits_total", "Sessions that reused a cached stratification.")
	reg.DeclareCounter("oasis_pool_strata_cache_misses_total", "Sessions that computed (and cached) a stratification.")
	reg.DeclareGauge("oasis_pool_strata_cached", "Stratifications currently cached across all pools.")
	reg.DeclareGauge("oasis_pool_store_damaged_files", "Quarantined pool files (unreadable at open).")

	if s.trc != nil {
		reg.DeclareCounter("oasis_trace_recorded_total", "Requests that recorded a trace (head-sampled or forced by an inbound traceparent).")
		reg.DeclareCounter("oasis_trace_retained_slow_total", "Recorded traces retained because the request met the slow threshold.")
		reg.DeclareCounter("oasis_trace_retained_errored_total", "Recorded traces retained because the request returned a 5xx.")
		reg.DeclareCounter("oasis_trace_span_drops_total", "Spans dropped because a trace hit its fixed span capacity.")
	}

	reg.AddCollector(s.collect)
}

func (s *Server) collect(emit obs.Emit) {
	emit("oasis_build_info", 1,
		obs.Label{Name: "version", Value: s.version},
		obs.Label{Name: "goversion", Value: runtime.Version()})
	emit("process_uptime_seconds", time.Since(s.start).Seconds())
	emit("go_goroutines", float64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	emit("go_memstats_heap_alloc_bytes", float64(ms.HeapAlloc))
	emit("go_memstats_heap_objects", float64(ms.HeapObjects))
	emit("go_gc_cycles_total", float64(ms.NumGC))
	emit("go_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)

	diagMem := 0
	for shard := 0; shard < s.mgr.Shards(); shard++ {
		sessions := s.mgr.Sessions(shard)
		emit("oasis_sessions", float64(len(sessions)), obs.Label{Name: "shard", Value: strconv.Itoa(shard)})
		for _, sess := range sessions {
			h := sess.SamplerHealth()
			sl := obs.Label{Name: "session", Value: h.ID}
			ml := obs.Label{Name: "method", Value: string(h.Method)}
			emit("oasis_sampler_estimate", h.Estimate, sl, ml)
			emit("oasis_sampler_asymptotic_variance", h.AsymptoticVariance, sl, ml)
			emit("oasis_sampler_ess", h.ESS, sl, ml)
			emit("oasis_sampler_ess_ratio", h.ESSRatio, sl, ml)
			emit("oasis_sampler_terms", float64(h.Terms), sl, ml)
			emit("oasis_sampler_labels_committed", float64(h.LabelsCommitted), sl, ml)
			emit("oasis_sampler_label_budget", float64(h.Budget), sl, ml)
			emit("oasis_sampler_pending_proposals", float64(h.PendingProposals), sl, ml)
			emit("oasis_sampler_health_state", float64(h.State), sl, ml)
			diagMem += sess.DiagMemBytes()
		}
	}
	emit("oasis_diag_series_mem_bytes", float64(diagMem))

	if s.jrn != nil {
		st := s.jrn.Stats()
		for _, ln := range st.Lanes {
			ll := obs.Label{Name: "lane", Value: strconv.Itoa(ln.Lane)}
			emit("oasis_wal_segments", float64(ln.Segments), ll)
			emit("oasis_wal_active_segment", float64(ln.ActiveSegment), ll)
			emit("oasis_wal_records_appended_total", float64(ln.RecordsAppended), ll)
			emit("oasis_wal_bytes_appended_total", float64(ln.BytesAppended), ll)
			emit("oasis_wal_syncs_total", float64(ln.Syncs), ll)
			emit("oasis_wal_last_lsn", float64(ln.LastLSN), ll)
		}
		emit("oasis_wal_compactions_total", float64(st.Compactions))
		emit("oasis_wal_replay_applied_total", float64(st.ReplayApplied))
		emit("oasis_wal_replay_skipped_total", float64(st.ReplaySkipped))
		emit("oasis_wal_replay_torn_bytes", float64(st.ReplayTornBytes))
		failed := 0.0
		if s.jrn.Err() != nil {
			failed = 1
		}
		emit("oasis_wal_failed", failed)
	}

	if s.pools != nil {
		st := s.pools.Stats()
		emit("oasis_pool_store_pools", float64(st.Pools))
		emit("oasis_pool_store_loaded", float64(st.Loaded))
		emit("oasis_pool_store_refs", float64(st.Refs))
		emit("oasis_pool_store_bytes", float64(st.Bytes))
		emit("oasis_pool_store_resident_bytes", float64(st.ResidentBytes))
		emit("oasis_pool_store_mapped", float64(st.Mapped))
		emit("oasis_pool_mmap_bytes", float64(st.MmapBytes))
		emit("oasis_pool_store_mem_budget_bytes", float64(st.MemBudget))
		emit("oasis_pool_store_puts_total", float64(st.Puts))
		emit("oasis_pool_store_dedup_hits_total", float64(st.DedupHits))
		emit("oasis_pool_store_loads_total", float64(st.Loads))
		emit("oasis_pool_evictions_total", float64(st.Evictions-st.BudgetEvictions), obs.Label{Name: "reason", Value: "idle"})
		emit("oasis_pool_evictions_total", float64(st.BudgetEvictions), obs.Label{Name: "reason", Value: "budget"})
		emit("oasis_pool_store_evictions_total", float64(st.Evictions))
		emit("oasis_pool_store_sweeps_total", float64(st.Sweeps))
		emit("oasis_pool_store_removes_total", float64(st.Removes))
		emit("oasis_pool_strata_cache_hits_total", float64(st.StrataCacheHits))
		emit("oasis_pool_strata_cache_misses_total", float64(st.StrataCacheMisses))
		emit("oasis_pool_strata_cached", float64(st.StrataCached))
		emit("oasis_pool_store_damaged_files", float64(st.Damaged))
	}

	if s.trc != nil {
		ts := s.trc.Stats()
		emit("oasis_trace_recorded_total", float64(ts.Recorded))
		emit("oasis_trace_retained_slow_total", float64(ts.RetainedSlow))
		emit("oasis_trace_retained_errored_total", float64(ts.RetainedErr))
		emit("oasis_trace_span_drops_total", float64(ts.SpanDrops))
	}
}

// readRuntimeStats fills the /v1/stats runtime block.
func readRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeStats{
		GoVersion:           runtime.Version(),
		Goroutines:          runtime.NumGoroutine(),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapObjects:         ms.HeapObjects,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
}
