// Package oracle implements the labelling oracle of Definition 4: a
// randomised function returning Boolean labels whose distribution is
// parametrised by per-pair probabilities p(1|z). It also provides the
// caching wrapper that implements the paper's label-budget accounting
// (footnote 5): sampling is with replacement, but a pair charges the budget
// only the first time its label is queried.
package oracle

import (
	"errors"

	"oasis/internal/rng"
)

// Oracle returns a (possibly random) Boolean label for pool item i.
type Oracle interface {
	Label(i int) bool
}

// Deterministic is the paper's experimental regime: a fixed ground-truth
// label per pair, i.e. p(1|z) ∈ {0, 1}.
type Deterministic struct {
	Labels []bool
}

// NewDeterministic wraps fixed labels as an oracle.
func NewDeterministic(labels []bool) *Deterministic {
	return &Deterministic{Labels: labels}
}

// Label returns the fixed label of item i.
func (o *Deterministic) Label(i int) bool { return o.Labels[i] }

// Bernoulli is the general noisy oracle: each query of item i draws an
// independent Bernoulli(p_i) label, matching the randomised-oracle model the
// consistency theory covers.
type Bernoulli struct {
	Probs []float64
	rng   *rng.RNG
}

// NewBernoulli builds a noisy oracle with per-item probabilities and its own
// random stream.
func NewBernoulli(probs []float64, r *rng.RNG) *Bernoulli {
	return &Bernoulli{Probs: probs, rng: r}
}

// Label draws a fresh Bernoulli(p_i) label.
func (o *Bernoulli) Label(i int) bool { return o.rng.Bernoulli(o.Probs[i]) }

// FromProbs returns the natural oracle for a probability vector: a
// Deterministic oracle if every probability is exactly 0 or 1, otherwise a
// Bernoulli oracle using r.
func FromProbs(probs []float64, r *rng.RNG) Oracle {
	deterministic := true
	for _, p := range probs {
		if p != 0 && p != 1 {
			deterministic = false
			break
		}
	}
	if deterministic {
		labels := make([]bool, len(probs))
		for i, p := range probs {
			labels[i] = p == 1
		}
		return NewDeterministic(labels)
	}
	return NewBernoulli(probs, r)
}

// ErrBudgetExhausted is returned by Budgeted.TryLabel when a new (uncached)
// query would exceed the label budget.
var ErrBudgetExhausted = errors.New("oracle: label budget exhausted")

// Budgeted wraps an oracle with first-query caching and budget accounting.
// Repeat queries of the same item return the cached label and consume no
// budget — exactly the paper's accounting, which also keeps the estimators
// consistent under noisy oracles within a run (each pair has one realised
// label per evaluation run, as with a crowd worker answering once).
type Budgeted struct {
	inner   Oracle
	cache   map[int]bool
	queries int
	budget  int
}

// NewBudgeted wraps inner with the given budget. A non-positive budget means
// unlimited.
func NewBudgeted(inner Oracle, budget int) *Budgeted {
	return &Budgeted{inner: inner, cache: make(map[int]bool), budget: budget}
}

// Consumed returns the number of distinct items labelled so far.
func (b *Budgeted) Consumed() int { return len(b.cache) }

// Queries returns the total number of Label calls (including cache hits).
func (b *Budgeted) Queries() int { return b.queries }

// Remaining returns the remaining budget, or -1 when unlimited.
func (b *Budgeted) Remaining() int {
	if b.budget <= 0 {
		return -1
	}
	return b.budget - len(b.cache)
}

// Exhausted reports whether a new uncached query would exceed the budget.
func (b *Budgeted) Exhausted() bool {
	return b.budget > 0 && len(b.cache) >= b.budget
}

// TryLabel returns the label of item i, charging the budget if i is uncached.
// It returns ErrBudgetExhausted when the charge would exceed the budget.
func (b *Budgeted) TryLabel(i int) (bool, error) {
	b.queries++
	if l, ok := b.cache[i]; ok {
		return l, nil
	}
	if b.Exhausted() {
		b.queries--
		return false, ErrBudgetExhausted
	}
	l := b.inner.Label(i)
	b.cache[i] = l
	return l, nil
}

// Label implements Oracle; it panics if the budget is exhausted. Use TryLabel
// in budget-sensitive loops.
func (b *Budgeted) Label(i int) bool {
	l, err := b.TryLabel(i)
	if err != nil {
		panic(err)
	}
	return l
}
