package oracle

import (
	"math"
	"testing"

	"oasis/internal/rng"
)

func TestDeterministic(t *testing.T) {
	o := NewDeterministic([]bool{true, false, true})
	if !o.Label(0) || o.Label(1) || !o.Label(2) {
		t.Error("deterministic oracle returned wrong labels")
	}
	// Labels must be stable across repeat queries.
	for i := 0; i < 10; i++ {
		if !o.Label(0) {
			t.Fatal("label changed across queries")
		}
	}
}

func TestBernoulliRates(t *testing.T) {
	probs := []float64{0, 0.25, 0.75, 1}
	o := NewBernoulli(probs, rng.New(1))
	const n = 50000
	for i, p := range probs {
		hits := 0
		for q := 0; q < n; q++ {
			if o.Label(i) {
				hits++
			}
		}
		rate := float64(hits) / n
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("item %d rate = %v, want %v", i, rate, p)
		}
	}
}

func TestFromProbs(t *testing.T) {
	if _, ok := FromProbs([]float64{0, 1, 1}, rng.New(2)).(*Deterministic); !ok {
		t.Error("0/1 probs should give deterministic oracle")
	}
	if _, ok := FromProbs([]float64{0, 0.5}, rng.New(3)).(*Bernoulli); !ok {
		t.Error("fractional probs should give Bernoulli oracle")
	}
	det := FromProbs([]float64{0, 1}, rng.New(4))
	if det.Label(0) || !det.Label(1) {
		t.Error("FromProbs deterministic labels wrong")
	}
}

func TestBudgetedCaching(t *testing.T) {
	o := NewBudgeted(NewDeterministic([]bool{true, false, true, false}), 2)
	// First query charges budget.
	l, err := o.TryLabel(0)
	if err != nil || !l {
		t.Fatalf("TryLabel(0) = %v, %v", l, err)
	}
	if o.Consumed() != 1 {
		t.Errorf("consumed = %d", o.Consumed())
	}
	// Repeat query: cached, no charge.
	for i := 0; i < 5; i++ {
		if _, err := o.TryLabel(0); err != nil {
			t.Fatal(err)
		}
	}
	if o.Consumed() != 1 {
		t.Errorf("repeat queries charged budget: %d", o.Consumed())
	}
	if o.Queries() != 6 {
		t.Errorf("queries = %d", o.Queries())
	}
	// Second distinct item exhausts the budget of 2.
	if _, err := o.TryLabel(1); err != nil {
		t.Fatal(err)
	}
	if !o.Exhausted() {
		t.Error("budget should be exhausted")
	}
	if _, err := o.TryLabel(2); err != ErrBudgetExhausted {
		t.Errorf("expected ErrBudgetExhausted, got %v", err)
	}
	// Cached items remain available after exhaustion.
	if l, err := o.TryLabel(1); err != nil || l {
		t.Errorf("cached label after exhaustion = %v, %v", l, err)
	}
}

func TestBudgetedUnlimited(t *testing.T) {
	o := NewBudgeted(NewDeterministic(make([]bool, 100)), 0)
	for i := 0; i < 100; i++ {
		if _, err := o.TryLabel(i); err != nil {
			t.Fatal(err)
		}
	}
	if o.Remaining() != -1 {
		t.Errorf("unlimited Remaining = %d", o.Remaining())
	}
	if o.Exhausted() {
		t.Error("unlimited budget cannot exhaust")
	}
}

func TestBudgetedRemaining(t *testing.T) {
	o := NewBudgeted(NewDeterministic(make([]bool, 10)), 5)
	if o.Remaining() != 5 {
		t.Errorf("remaining = %d", o.Remaining())
	}
	o.Label(0)
	o.Label(1)
	if o.Remaining() != 3 {
		t.Errorf("remaining after 2 = %d", o.Remaining())
	}
}

func TestBudgetedNoisyOracleStableWithinRun(t *testing.T) {
	// A noisy oracle behind the cache must return one realised label per
	// item per run (like a crowd worker who answers once).
	probs := make([]float64, 50)
	for i := range probs {
		probs[i] = 0.5
	}
	o := NewBudgeted(NewBernoulli(probs, rng.New(5)), 0)
	first := make([]bool, 50)
	for i := 0; i < 50; i++ {
		first[i] = o.Label(i)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			if o.Label(i) != first[i] {
				t.Fatal("cached noisy label changed within run")
			}
		}
	}
}

func TestBudgetedLabelPanicsOnExhaustion(t *testing.T) {
	o := NewBudgeted(NewDeterministic(make([]bool, 3)), 1)
	o.Label(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Label(1)
}
