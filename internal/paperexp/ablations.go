package paperexp

import (
	"fmt"
	"io"

	"oasis/erbench"
)

// ablationCurve runs OASIS (or IS) with one configuration and prints the
// final-budget error.
func ablationRow(w io.Writer, label string, b *erbench.BuiltPool, kind erbench.MethodKind, hc erbench.HarnessConfig) error {
	c, err := erbench.RunCurves(b, kind, hc)
	if err != nil {
		return err
	}
	last := len(c.Checkpoints) - 1
	fmt.Fprintf(w, "%-26s %10d %12s %12s\n", label,
		c.Checkpoints[last], fmtF(c.MeanAbsErr[last], 5), fmtF(c.StdDev[last], 5))
	return nil
}

// AblationEpsilon sweeps the ε-greedy exploration rate: ε→1 approaches
// passive sampling, ε→0 approaches the (inconsistent) greedy optimum.
func AblationEpsilon(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	fmt.Fprintf(w, "Ablation: epsilon sweep, Abt-Buy, budget=%d runs=%d\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "epsilon", "labels", "abs err", "std dev")
	for _, eps := range []float64{1e-4, 1e-3, 1e-2, 1e-1, 0.5, 1.0} {
		hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 43, Strata: 30, Epsilon: eps}
		if err := ablationRow(w, fmt.Sprintf("eps=%g", eps), b, erbench.OASIS, hc); err != nil {
			return err
		}
	}
	return nil
}

// AblationPriorStrength sweeps η, the Beta prior weight.
func AblationPriorStrength(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	fmt.Fprintf(w, "Ablation: prior strength sweep, Abt-Buy, budget=%d runs=%d (paper default eta=2K=60)\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "eta", "labels", "abs err", "std dev")
	for _, eta := range []float64{0.5, 2, 10, 60, 300} {
		hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 47, Strata: 30, PriorStrength: eta}
		if err := ablationRow(w, fmt.Sprintf("eta=%g", eta), b, erbench.OASIS, hc); err != nil {
			return err
		}
	}
	return nil
}

// AblationPriorDecay compares the Remark 4 prior decay against the bare
// Algorithm 3.
func AblationPriorDecay(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	fmt.Fprintf(w, "Ablation: Remark 4 prior decay, Abt-Buy, budget=%d runs=%d\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "variant", "labels", "abs err", "std dev")
	for _, noDecay := range []bool{false, true} {
		label := "decay on (default)"
		if noDecay {
			label = "decay off (bare Alg. 3)"
		}
		hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 53, Strata: 30, NoPriorDecay: noDecay}
		if err := ablationRow(w, label, b, erbench.OASIS, hc); err != nil {
			return err
		}
	}
	return nil
}

// AblationStratifier compares CSF stratification against equal-size strata.
func AblationStratifier(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	fmt.Fprintf(w, "Ablation: stratifier, Abt-Buy, budget=%d runs=%d\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "stratifier", "labels", "abs err", "std dev")
	for _, equal := range []bool{false, true} {
		label := "CSF (Algorithm 1)"
		if equal {
			label = "equal-size"
		}
		hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 59, Strata: 30, EqualSizeStrata: equal}
		if err := ablationRow(w, label, b, erbench.OASIS, hc); err != nil {
			return err
		}
	}
	return nil
}

// AblationPosteriorEstimate compares the paper's importance-weighted
// estimator (Eqn. 3) against the stratified posterior plug-in. The plug-in
// is strongly biased under class imbalance (tail strata keep their prior
// match mass), which is precisely why the paper uses the weighted form.
func AblationPosteriorEstimate(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	fmt.Fprintf(w, "Ablation: estimator form, Abt-Buy, budget=%d runs=%d\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-26s %10s %12s %12s\n", "estimator", "labels", "abs err", "std dev")
	for _, plugin := range []bool{false, true} {
		label := "AIS ratio (Eqn. 3)"
		if plugin {
			label = "posterior plug-in"
		}
		hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 61, Strata: 30, PosteriorEstimate: plugin}
		if err := ablationRow(w, label, b, erbench.OASIS, hc); err != nil {
			return err
		}
	}
	return nil
}

// AblationISAlias shows that naive O(N)-per-draw and alias O(1)-per-draw IS
// produce statistically identical estimates at very different CPU cost.
func AblationISAlias(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("cora", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("cora", cfg.Scale) / 4
	runs := cfg.Runs
	if runs > 5 {
		runs = 5
	}
	fmt.Fprintf(w, "Ablation: IS sampling mode, cora (N=%d), budget=%d runs=%d\n", b.Pool.N(), budget, runs)
	fmt.Fprintf(w, "%-26s %12s %12s %16s\n", "mode", "abs err", "std dev", "per iteration")
	for _, kind := range []erbench.MethodKind{erbench.ImportanceSampling, erbench.ImportanceSamplingNaive} {
		hc := erbench.HarnessConfig{Budget: budget, Runs: runs, Seed: cfg.Seed + 67}
		c, err := erbench.RunCurves(b, kind, hc)
		if err != nil {
			return err
		}
		tm, err := erbench.RunTiming(b, kind, erbench.HarnessConfig{Budget: budget, Runs: 2, Seed: cfg.Seed + 71})
		if err != nil {
			return err
		}
		last := len(c.Checkpoints) - 1
		fmt.Fprintf(w, "%-26s %12s %12s %16v\n", kind.String(),
			fmtF(c.MeanAbsErr[last], 5), fmtF(c.StdDev[last], 5), tm.PerIteration)
	}
	return nil
}

// HeadlineSavings computes the paper's headline: the label saving of OASIS
// relative to IS and Passive at a fixed error target on the most imbalanced
// dataset (§1: "83% reduction in labelling requirements under a class
// imbalance of 1:3000").
func HeadlineSavings(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Amazon-GoogleProducts", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("Amazon-GoogleProducts", cfg.Scale)
	hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 73, Strata: 30}
	oasisC, err := erbench.RunCurves(b, erbench.OASIS, hc)
	if err != nil {
		return err
	}
	isC, err := erbench.RunCurves(b, erbench.ImportanceSampling, hc)
	if err != nil {
		return err
	}
	passiveC, err := erbench.RunCurves(b, erbench.Passive, hc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Headline: label savings on Amazon-GoogleProducts (imbalance ~1:3381, budget=%d)\n", budget)
	fmt.Fprintf(w, "%-10s %14s %14s %14s\n", "target", "OASIS labels", "IS labels", "Passive labels")
	for _, target := range []float64{0.10, 0.05, 0.02} {
		lo := erbench.LabelsToReachError(oasisC, target)
		li := erbench.LabelsToReachError(isC, target)
		lp := erbench.LabelsToReachError(passiveC, target)
		fmt.Fprintf(w, "%-10.2f %14d %14d %14d\n", target, lo, li, lp)
		if lo > 0 && lp > 0 {
			fmt.Fprintf(w, "  OASIS vs Passive saving at %.2f: %.0f%%\n", target, 100*(1-float64(lo)/float64(lp)))
		}
		if lo > 0 && li > 0 {
			fmt.Fprintf(w, "  OASIS vs IS saving at %.2f: %.0f%%\n", target, 100*(1-float64(lo)/float64(li)))
		}
	}
	return nil
}
