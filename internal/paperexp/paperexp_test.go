package paperexp

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func TestFromEnvDefaults(t *testing.T) {
	for _, k := range []string{"OASIS_BENCH_SCALE", "OASIS_BENCH_RUNS", "OASIS_BENCH_SEED"} {
		t.Setenv(k, "")
		os.Unsetenv(k)
	}
	cfg := FromEnv()
	if cfg.Scale != 0.25 || cfg.Runs != 20 || cfg.Seed != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestFromEnvOverrides(t *testing.T) {
	t.Setenv("OASIS_BENCH_SCALE", "0.5")
	t.Setenv("OASIS_BENCH_RUNS", "7")
	t.Setenv("OASIS_BENCH_SEED", "99")
	cfg := FromEnv()
	if cfg.Scale != 0.5 || cfg.Runs != 7 || cfg.Seed != 99 {
		t.Errorf("overrides = %+v", cfg)
	}
}

func TestFromEnvIgnoresGarbage(t *testing.T) {
	t.Setenv("OASIS_BENCH_SCALE", "not-a-number")
	t.Setenv("OASIS_BENCH_RUNS", "-3")
	cfg := FromEnv()
	if cfg.Scale != 0.25 {
		t.Errorf("garbage scale should fall back: %v", cfg.Scale)
	}
	if cfg.Runs != 20 {
		t.Errorf("non-positive runs should fall back: %v", cfg.Runs)
	}
}

func TestBudgetFor(t *testing.T) {
	if b := budgetFor("Amazon-GoogleProducts", 1.0); b != 40000 {
		t.Errorf("AG full budget %d", b)
	}
	if b := budgetFor("tweets100k", 0.01); b != 500 {
		t.Errorf("budget floor %d", b)
	}
}

func TestOasisKs(t *testing.T) {
	if got := oasisKs("tweets100k"); got[0] != 10 || got[2] != 40 {
		t.Errorf("tweets Ks %v", got)
	}
	if got := oasisKs("Abt-Buy"); got[0] != 30 || got[2] != 120 {
		t.Errorf("default Ks %v", got)
	}
}

func TestPaperOperatingPointsComplete(t *testing.T) {
	for _, name := range []string{"Amazon-GoogleProducts", "restaurant", "DBLP-ACM", "Abt-Buy", "cora", "tweets100k"} {
		p := paperOperatingPoint(name)
		if p[2] == 0 {
			t.Errorf("%s: missing paper F", name)
		}
	}
	if p := paperOperatingPoint("nope"); p[0] != 0 {
		t.Error("unknown dataset should give zeros")
	}
}

func TestTable1Smoke(t *testing.T) {
	// Table 1 only generates datasets (no pools, no sampling) — a fast
	// end-to-end check that the regeneration layer produces its table.
	var buf bytes.Buffer
	if err := Table1(&buf, Config{Scale: 0.1, Runs: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Amazon-GoogleProducts", "tweets100k", "cora"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 8 {
		t.Errorf("expected 8+ lines, got %d:\n%s", lines, out)
	}
}

func TestFmtF(t *testing.T) {
	if got := fmtF(0.123456, 3); got != "0.123" {
		t.Errorf("fmtF = %q", got)
	}
	if got := fmtF(math.NaN(), 3); got != "-" {
		t.Errorf("fmtF(NaN) = %q", got)
	}
}
