// Package paperexp regenerates every table and figure of the paper's
// evaluation section (§6) against the synthetic testbed. Each function
// writes an aligned text table to the supplied writer; the root-level
// benchmarks and cmd/oasis-bench are thin wrappers around these.
//
// Scale semantics: pool sizes and match counts are the paper's Table 2
// values multiplied by Scale, and label budgets are the paper's figure axes
// multiplied by the same factor. Runs defaults far below the paper's 1000
// repeats to stay laptop-friendly; increase it for smoother curves.
package paperexp

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"

	"oasis/erbench"
)

// Config controls the regeneration scale.
type Config struct {
	// Scale multiplies pool sizes, match counts and label budgets
	// (1.0 = paper scale). Default 0.25.
	Scale float64
	// Runs is the number of repeats per error curve (paper: 1000).
	// Default 20.
	Runs int
	// Seed is the base seed for datasets and experiments.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.Runs <= 0 {
		c.Runs = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// FromEnv reads OASIS_BENCH_SCALE, OASIS_BENCH_RUNS and OASIS_BENCH_SEED
// into a Config, leaving defaults where unset or invalid.
func FromEnv() Config {
	var c Config
	if v, err := strconv.ParseFloat(os.Getenv("OASIS_BENCH_SCALE"), 64); err == nil {
		c.Scale = v
	}
	if v, err := strconv.Atoi(os.Getenv("OASIS_BENCH_RUNS")); err == nil {
		c.Runs = v
	}
	if v, err := strconv.ParseUint(os.Getenv("OASIS_BENCH_SEED"), 10, 64); err == nil {
		c.Seed = v
	}
	return c.withDefaults()
}

// paperBudget is the per-dataset label-budget axis of Figure 2.
var paperBudget = map[string]int{
	"Amazon-GoogleProducts": 40000,
	"restaurant":            20000,
	"DBLP-ACM":              10000,
	"Abt-Buy":               20000,
	"cora":                  20000,
	"tweets100k":            5000,
}

// oasisKs is the set of OASIS stratum counts per dataset in Figure 2.
func oasisKs(name string) []int {
	if name == "tweets100k" {
		return []int{10, 20, 40}
	}
	return []int{30, 60, 120}
}

// budgetFor scales the paper budget, floored for usefulness.
func budgetFor(name string, scale float64) int {
	b := int(float64(paperBudget[name]) * scale)
	if b < 500 {
		b = 500
	}
	return b
}

// poolCache memoises built pools across tables/figures within a process.
var (
	poolMu    sync.Mutex
	poolCache = map[string]*erbench.BuiltPool{}
)

// Pool returns the (cached) evaluation pool for a dataset.
func Pool(name string, cfg Config, classifier erbench.Classifier, calibrate bool) (*erbench.BuiltPool, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%s|%v|%v|%v|%v", name, cfg.Scale, cfg.Seed, classifier, calibrate)
	poolMu.Lock()
	defer poolMu.Unlock()
	if b, ok := poolCache[key]; ok {
		return b, nil
	}
	b, err := erbench.BuildPool(name, erbench.PoolConfig{
		Scale:      cfg.Scale,
		Classifier: classifier,
		Calibrate:  calibrate,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	poolCache[key] = b
	return b, nil
}

// fmtF formats a float or "-" for NaN.
func fmtF(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Table1 regenerates Table 1: the dataset inventory with sizes, imbalance
// ratios and match counts, paper values alongside.
func Table1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	infos, err := erbench.Inventory(cfg.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 1: datasets (measured vs paper)\n")
	fmt.Fprintf(w, "%-22s %12s %12s %10s %10s %9s %9s\n",
		"dataset", "pairs", "pairs(ppr)", "imb", "imb(ppr)", "matches", "m(ppr)")
	for _, info := range infos {
		fmt.Fprintf(w, "%-22s %12d %12d %10.1f %10.1f %9d %9d\n",
			info.Name, info.Pairs, info.PaperPairs,
			info.ImbalanceRatio, info.PaperImbalance,
			info.Matches, info.PaperMatches)
	}
	return nil
}

// Table2 regenerates Table 2: the evaluation pools and the trained linear
// SVM's true operating point on each.
func Table2(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Table 2: pools and L-SVM operating points at scale %.2f (paper values in parens)\n", cfg.Scale)
	fmt.Fprintf(w, "%-22s %9s %9s %18s %18s %18s\n",
		"dataset", "size", "matches", "precision", "recall", "F1/2")
	for _, name := range erbench.DatasetNames() {
		b, err := Pool(name, cfg, erbench.LinearSVM, false)
		if err != nil {
			return err
		}
		prof := paperOperatingPoint(name)
		fmt.Fprintf(w, "%-22s %9d %9.0f %9.3f (%.3f)  %9.3f (%.3f)  %9.3f (%.3f)\n",
			name, b.Pool.N(), b.Pool.Internal().ExpectedMatches(),
			b.Precision, prof[0], b.Recall, prof[1], b.F50, prof[2])
	}
	return nil
}

// paperOperatingPoint returns the paper's Table 2 precision/recall/F values.
func paperOperatingPoint(name string) [3]float64 {
	switch name {
	case "Amazon-GoogleProducts":
		return [3]float64{0.597, 0.185, 0.282}
	case "restaurant":
		return [3]float64{0.909, 0.888, 0.899}
	case "DBLP-ACM":
		return [3]float64{1.0, 0.9, 0.947}
	case "Abt-Buy":
		return [3]float64{0.916, 0.44, 0.595}
	case "cora":
		return [3]float64{0.841, 0.837, 0.839}
	case "tweets100k":
		return [3]float64{0.762, 0.778, 0.770}
	default:
		return [3]float64{}
	}
}

// Table3 regenerates Table 3: average CPU time per run and per iteration on
// the cora pool for Passive, IS (naive O(N)-per-draw as in the paper's
// implementation), OASIS with K = 30/60/120, and Stratified.
func Table3(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("cora", cfg, erbench.LinearSVM, false)
	if err != nil {
		return err
	}
	budget := budgetFor("cora", cfg.Scale)
	runs := cfg.Runs
	if runs > 5 {
		runs = 5 // timing runs are serial; a handful suffices
	}
	fmt.Fprintf(w, "Table 3: CPU times, cora pool (N=%d, budget=%d, %d runs)\n", b.Pool.N(), budget, runs)
	fmt.Fprintf(w, "%-14s %16s %18s\n", "method", "per run", "per iteration")
	type row struct {
		kind erbench.MethodKind
		k    int
	}
	rows := []row{
		{erbench.Passive, 0},
		{erbench.ImportanceSamplingNaive, 0},
		{erbench.OASIS, 30},
		{erbench.OASIS, 60},
		{erbench.OASIS, 120},
		{erbench.Stratified, 30},
	}
	for _, r := range rows {
		hc := erbench.HarnessConfig{Budget: budget, Runs: runs, Seed: cfg.Seed + 17, Strata: r.k}
		tm, err := erbench.RunTiming(b, r.kind, hc)
		if err != nil {
			return err
		}
		name := tm.Method
		if r.kind == erbench.OASIS {
			name = fmt.Sprintf("OASIS %d", r.k)
		}
		fmt.Fprintf(w, "%-14s %16v %18v\n", name, tm.PerRun, tm.PerIteration)
	}
	return nil
}

// Figure1 regenerates Figure 1: sizes and mean calibrated scores of the CSF
// strata on the Abt-Buy pool.
func Figure1(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, true)
	if err != nil {
		return err
	}
	rows, err := erbench.StrataSummary(b, 30)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 1: CSF strata of the Abt-Buy pool (calibrated scores, K=30 target, %d realised)\n", len(rows))
	fmt.Fprintf(w, "%-8s %10s %12s %10s\n", "stratum", "size", "mean score", "mean pred")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %10d %12.4f %10.3f\n", r.Index, r.Size, r.MeanScore, r.MeanPred)
	}
	return nil
}

// Figure2 regenerates Figure 2: expected absolute error and standard
// deviation of F̂_1/2 versus label budget for Passive, Stratified, IS and
// OASIS (three K values) on all six pools. Rows are printed at a handful of
// budget checkpoints per method.
func Figure2(w io.Writer, cfg Config, datasets ...string) error {
	cfg = cfg.withDefaults()
	if len(datasets) == 0 {
		datasets = erbench.DatasetNames()
	}
	for _, name := range datasets {
		b, err := Pool(name, cfg, erbench.LinearSVM, false)
		if err != nil {
			return err
		}
		budget := budgetFor(name, cfg.Scale)
		fmt.Fprintf(w, "Figure 2 [%s]: trueF=%.4f budget=%d runs=%d\n", name, b.TrueF(0.5), budget, cfg.Runs)
		fmt.Fprintf(w, "%-12s %10s %12s %12s %10s\n", "method", "labels", "abs err", "std dev", "defined")
		emit := func(kind erbench.MethodKind, k int) error {
			hc := erbench.HarnessConfig{
				Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 29, Strata: k,
			}
			c, err := erbench.RunCurves(b, kind, hc)
			if err != nil {
				return err
			}
			for _, ci := range []int{len(c.Checkpoints) / 5, 2 * len(c.Checkpoints) / 5, 3 * len(c.Checkpoints) / 5, len(c.Checkpoints) - 1} {
				fmt.Fprintf(w, "%-12s %10d %12s %12s %10.2f\n", c.Name,
					c.Checkpoints[ci], fmtF(c.MeanAbsErr[ci], 5), fmtF(c.StdDev[ci], 5), c.DefinedFrac[ci])
			}
			return nil
		}
		if err := emit(erbench.Passive, 0); err != nil {
			return err
		}
		if err := emit(erbench.Stratified, 30); err != nil {
			return err
		}
		if err := emit(erbench.ImportanceSampling, 0); err != nil {
			return err
		}
		for _, k := range oasisKs(name) {
			if err := emit(erbench.OASIS, k); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure3 regenerates Figure 3: calibrated vs uncalibrated scores for IS and
// OASIS (K=60) on Abt-Buy and DBLP-ACM.
func Figure3(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	for _, name := range []string{"Abt-Buy", "DBLP-ACM"} {
		budget := budgetFor(name, cfg.Scale) / 2
		fmt.Fprintf(w, "Figure 3 [%s]: budget=%d runs=%d\n", name, budget, cfg.Runs)
		fmt.Fprintf(w, "%-16s %10s %12s %12s\n", "variant", "labels", "abs err", "std dev")
		for _, cal := range []bool{false, true} {
			b, err := Pool(name, cfg, erbench.LinearSVM, cal)
			if err != nil {
				return err
			}
			for _, kind := range []erbench.MethodKind{erbench.ImportanceSampling, erbench.OASIS} {
				hc := erbench.HarnessConfig{Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 31, Strata: 60}
				c, err := erbench.RunCurves(b, kind, hc)
				if err != nil {
					return err
				}
				last := len(c.Checkpoints) - 1
				label := c.Name + map[bool]string{false: " uncal.", true: " cal."}[cal]
				fmt.Fprintf(w, "%-16s %10d %12s %12s\n", label,
					c.Checkpoints[last], fmtF(c.MeanAbsErr[last], 5), fmtF(c.StdDev[last], 5))
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure4 regenerates Figure 4: single-run convergence diagnostics of OASIS
// on the calibrated Abt-Buy pool with K=30 — absolute error of F̂, of π̂, of
// v̂ against the population-optimal v*, and KL(v*‖v̂).
func Figure4(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	b, err := Pool("Abt-Buy", cfg, erbench.LinearSVM, true)
	if err != nil {
		return err
	}
	budget := budgetFor("Abt-Buy", cfg.Scale) / 2
	every := budget / 25
	if every < 1 {
		every = 1
	}
	conv, err := erbench.RunConvergence(b, erbench.HarnessConfig{
		Budget: budget, Strata: 30, Seed: cfg.Seed + 37,
	}, every)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4: OASIS convergence, Abt-Buy calibrated, K=30, budget=%d\n", budget)
	fmt.Fprintf(w, "%10s %12s %12s %12s %12s\n", "labels", "|F err|", "|pi err|", "|v* err|", "KL(v*||v)")
	for i := range conv.Labels {
		fmt.Fprintf(w, "%10d %12.5f %12.5f %12.5f %12.5f\n",
			conv.Labels[i], conv.FError[i], conv.PiError[i], conv.VError[i], conv.KL[i])
	}
	return nil
}

// Figure5 regenerates Figure 5: expected absolute error of F̂_1/2 after a
// fixed budget for five classifier families on Abt-Buy, with ~95% CIs.
func Figure5(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	budget := int(5000 * cfg.Scale)
	if budget < 300 {
		budget = 300
	}
	fmt.Fprintf(w, "Figure 5: abs err after %d labels, Abt-Buy, %d runs (±95%% CI)\n", budget, cfg.Runs)
	fmt.Fprintf(w, "%-8s %22s %22s %22s %22s\n", "clf", "Passive", "Stratified", "IS", "OASIS")
	classifiers := []erbench.Classifier{
		erbench.NeuralNet, erbench.Boosted, erbench.LogReg, erbench.KernelSVM, erbench.LinearSVM,
	}
	for _, clf := range classifiers {
		b, err := Pool("Abt-Buy", cfg, clf, false)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", clf.String())
		for _, kind := range []erbench.MethodKind{erbench.Passive, erbench.Stratified, erbench.ImportanceSampling, erbench.OASIS} {
			mean, ci, err := erbench.FinalError(b, kind, erbench.HarnessConfig{
				Budget: budget, Runs: cfg.Runs, Seed: cfg.Seed + 41, Strata: 30,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %11s ±%8s", fmtF(mean, 5), fmtF(ci, 5))
		}
		fmt.Fprintln(w)
	}
	return nil
}
