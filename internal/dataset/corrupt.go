package dataset

import (
	"strings"

	"oasis/internal/rng"
)

// Corruption controls how strongly a duplicate record's fields are perturbed
// relative to the original entity. Each probability is applied independently
// per applicable unit (character, token or field), so higher values produce
// duplicates that are harder to re-identify — this is the knob that tunes a
// synthetic dataset's difficulty toward the paper's Table 2 operating points.
type Corruption struct {
	// Typo is the per-character probability of an edit (substitute, delete,
	// insert or transpose) in short text fields.
	Typo float64
	// TokenDrop is the per-token probability of deleting a token.
	TokenDrop float64
	// TokenSwap is the probability of swapping one adjacent token pair.
	TokenSwap float64
	// Abbreviate is the per-token probability of truncating a token to a
	// 1–3 character prefix.
	Abbreviate float64
	// Synonym is the per-token probability of replacing a token with an
	// unrelated word (vocabulary drift between the two sources).
	Synonym float64
	// NumericJitter is the relative standard deviation applied to numeric
	// fields (e.g. 0.05 = 5% multiplicative noise).
	NumericJitter float64
	// MissingField is the per-field probability of blanking a value.
	MissingField float64
	// Catastrophic is the per-record probability that a duplicate view is
	// near-totally rewritten (most tokens replaced, numerics scrambled,
	// fields dropped). Real ER benchmarks contain such pairs — e.g. the same
	// product listed with an entirely different title and description — and
	// they are what drives recall far below 1 in Table 2 (Abt-Buy 0.44,
	// Amazon-GoogleProducts 0.185). Because their similarity signal is
	// destroyed, these matches hide at the bottom of the score range, where
	// only adaptive sampling can price them correctly.
	Catastrophic float64
}

// catastrophicRewrite is the corruption applied to a duplicate view selected
// for catastrophic rewriting.
var catastrophicRewrite = Corruption{
	Typo:          0.12,
	TokenDrop:     0.35,
	TokenSwap:     0.5,
	Abbreviate:    0.2,
	Synonym:       0.65,
	NumericJitter: 1.2,
	MissingField:  0.35,
}

// Scale returns a copy of c with every probability multiplied by f
// (clamped to [0,1]).
func (c Corruption) Scale(f float64) Corruption {
	clamp := func(p float64) float64 {
		p *= f
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	return Corruption{
		Typo:          clamp(c.Typo),
		TokenDrop:     clamp(c.TokenDrop),
		TokenSwap:     clamp(c.TokenSwap),
		Abbreviate:    clamp(c.Abbreviate),
		Synonym:       clamp(c.Synonym),
		NumericJitter: c.NumericJitter * f,
		MissingField:  clamp(c.MissingField),
	}
}

const typoAlphabet = "abcdefghijklmnopqrstuvwxyz"

// corruptChars applies per-character edits to s.
func corruptChars(s string, p float64, r *rng.RNG) string {
	if p <= 0 || s == "" {
		return s
	}
	runes := []rune(s)
	out := make([]rune, 0, len(runes)+4)
	for i := 0; i < len(runes); i++ {
		if !r.Bernoulli(p) {
			out = append(out, runes[i])
			continue
		}
		switch r.Intn(4) {
		case 0: // substitute
			out = append(out, rune(typoAlphabet[r.Intn(len(typoAlphabet))]))
		case 1: // delete
		case 2: // insert
			out = append(out, runes[i], rune(typoAlphabet[r.Intn(len(typoAlphabet))]))
		default: // transpose with next
			if i+1 < len(runes) {
				out = append(out, runes[i+1], runes[i])
				i++
			} else {
				out = append(out, runes[i])
			}
		}
	}
	return string(out)
}

// CorruptText perturbs a whitespace-tokenised string according to c, drawing
// replacement words from lex (which may be nil to disable synonyms).
func CorruptText(s string, c Corruption, lex *Lexicon, r *rng.RNG) string {
	if s == "" {
		return s
	}
	tokens := strings.Fields(s)
	out := tokens[:0]
	for _, tok := range tokens {
		if c.TokenDrop > 0 && len(tokens) > 1 && r.Bernoulli(c.TokenDrop) {
			continue
		}
		if c.Synonym > 0 && lex != nil && r.Bernoulli(c.Synonym) {
			tok = lex.Word(r)
		} else if c.Abbreviate > 0 && len(tok) > 3 && r.Bernoulli(c.Abbreviate) {
			tok = tok[:1+r.Intn(3)]
		}
		out = append(out, tok)
	}
	if len(out) == 0 {
		out = tokens[:1]
	}
	if c.TokenSwap > 0 && len(out) > 1 && r.Bernoulli(c.TokenSwap) {
		i := r.Intn(len(out) - 1)
		out[i], out[i+1] = out[i+1], out[i]
	}
	joined := strings.Join(out, " ")
	return corruptChars(joined, c.Typo, r)
}

// CorruptNumber applies multiplicative Gaussian jitter to v.
func CorruptNumber(v float64, c Corruption, r *rng.RNG) float64 {
	if c.NumericJitter <= 0 {
		return v
	}
	return v * (1 + r.NormalScaled(0, c.NumericJitter))
}
