package dataset

import (
	"strings"
	"testing"
	"testing/quick"

	"oasis/internal/rng"
)

func TestLexiconDeterministicAndDistinct(t *testing.T) {
	a := NewLexicon(1, 100, 1, 3)
	b := NewLexicon(1, 100, 1, 3)
	if a.Size() != 100 || b.Size() != 100 {
		t.Fatalf("sizes %d %d", a.Size(), b.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		w1, w2 := a.WordAt(i), b.WordAt(i)
		if w1 != w2 {
			t.Fatalf("lexicon not deterministic at %d: %q vs %q", i, w1, w2)
		}
		if seen[w1] {
			t.Fatalf("duplicate word %q", w1)
		}
		seen[w1] = true
		if w1 == "" {
			t.Fatal("empty word")
		}
	}
}

func TestLexiconPhrase(t *testing.T) {
	l := NewLexicon(2, 50, 1, 2)
	r := rng.New(3)
	p := l.Phrase(r, 5)
	if got := len(strings.Fields(p)); got != 5 {
		t.Errorf("phrase has %d words: %q", got, p)
	}
}

func TestModelCodeShape(t *testing.T) {
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		code := ModelCode(r)
		if len(code) < 4 {
			t.Errorf("code too short: %q", code)
		}
		hasDigit := false
		for _, c := range code {
			if c >= '0' && c <= '9' {
				hasDigit = true
			}
		}
		if !hasDigit {
			t.Errorf("code without digits: %q", code)
		}
	}
}

func TestCorruptTextIdentityAtZero(t *testing.T) {
	r := rng.New(5)
	s := "canon powershot sx30"
	if got := CorruptText(s, Corruption{}, nil, r); got != s {
		t.Errorf("zero corruption changed text: %q", got)
	}
}

func TestCorruptTextChangesAtHighLevels(t *testing.T) {
	r := rng.New(6)
	lex := NewLexicon(7, 100, 1, 2)
	c := Corruption{Typo: 0.3, TokenDrop: 0.3, TokenSwap: 0.5, Abbreviate: 0.3, Synonym: 0.3}
	s := "alpha bravo charlie delta echo foxtrot"
	changed := 0
	for i := 0; i < 50; i++ {
		if CorruptText(s, c, lex, r) != s {
			changed++
		}
	}
	if changed < 45 {
		t.Errorf("heavy corruption left text unchanged %d/50 times", 50-changed)
	}
}

func TestCorruptTextNeverEmpty(t *testing.T) {
	r := rng.New(8)
	c := Corruption{TokenDrop: 0.99}
	for i := 0; i < 100; i++ {
		if CorruptText("word", c, nil, r) == "" {
			t.Fatal("corruption produced empty text")
		}
	}
}

func TestCorruptionScale(t *testing.T) {
	c := Corruption{Typo: 0.5, TokenDrop: 0.8, NumericJitter: 0.1}
	half := c.Scale(0.5)
	if half.Typo != 0.25 || half.TokenDrop != 0.4 || half.NumericJitter != 0.05 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	capped := c.Scale(10)
	if capped.Typo != 1 || capped.TokenDrop != 1 {
		t.Errorf("Scale(10) should clamp probabilities: %+v", capped)
	}
}

func TestCorruptNumber(t *testing.T) {
	r := rng.New(9)
	if got := CorruptNumber(42, Corruption{}, r); got != 42 {
		t.Errorf("zero jitter changed number: %v", got)
	}
	c := Corruption{NumericJitter: 0.1}
	var diff float64
	for i := 0; i < 100; i++ {
		d := CorruptNumber(100, c, r) - 100
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff == 0 {
		t.Error("jitter produced no change")
	}
}

func TestGenerateTwoSourceShape(t *testing.T) {
	cfg := GeneratorConfig{Name: "test", Domain: DomainProduct, Seed: 10,
		Corruption: Corruption{Typo: 0.02, TokenDrop: 0.1}}
	ds, err := GenerateTwoSource(cfg, 100, 150, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.D1) != 100 || len(ds.D2) != 150 {
		t.Fatalf("sizes %d %d", len(ds.D1), len(ds.D2))
	}
	if ds.NumMatches() != 40 {
		t.Errorf("matches %d", ds.NumMatches())
	}
	if ds.NumPairs() != 15000 {
		t.Errorf("pairs %d", ds.NumPairs())
	}
	// Verify ground truth: matching EntityIDs appear once per source.
	ids1 := make(map[int]int)
	for _, rec := range ds.D1 {
		ids1[rec.EntityID]++
	}
	shared := 0
	for _, rec := range ds.D2 {
		if ids1[rec.EntityID] > 0 {
			shared++
		}
	}
	if shared != 40 {
		t.Errorf("shared entities %d, want 40", shared)
	}
	// Imbalance ratio = (15000-40)/40.
	want := float64(15000-40) / 40
	if ds.ImbalanceRatio() != want {
		t.Errorf("imbalance %v, want %v", ds.ImbalanceRatio(), want)
	}
}

func TestGenerateTwoSourceErrors(t *testing.T) {
	cfg := GeneratorConfig{Seed: 11}
	if _, err := GenerateTwoSource(cfg, 10, 10, 1000); err == nil {
		t.Error("expected error: matched infeasible for sizes")
	}
	if _, err := GenerateTwoSource(cfg, 0, 10, 0); err == nil {
		t.Error("expected error: empty source")
	}
}

func TestGenerateTwoSourceNonBijective(t *testing.T) {
	// More matches than either source has records (the Abt-Buy shape):
	// extras are duplicate views, and ground-truth pair count must equal
	// the requested match count exactly.
	cfg := GeneratorConfig{Name: "nb", Domain: DomainProduct, Seed: 20,
		Corruption: Corruption{Typo: 0.01}}
	ds, err := GenerateTwoSource(cfg, 50, 52, 55)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.D1) != 50 || len(ds.D2) != 52 {
		t.Fatalf("sizes %d %d", len(ds.D1), len(ds.D2))
	}
	count1 := make(map[int]int)
	for _, rec := range ds.D1 {
		count1[rec.EntityID]++
	}
	pairs := 0
	for _, rec := range ds.D2 {
		pairs += count1[rec.EntityID]
	}
	if pairs != 55 || ds.NumMatches() != 55 {
		t.Errorf("ground-truth pairs %d, NumMatches %d, want 55", pairs, ds.NumMatches())
	}
}

func TestGenerateTwoSourceDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Name: "d", Domain: DomainCitation, Seed: 12,
		Corruption: Corruption{Typo: 0.05}}
	a, _ := GenerateTwoSource(cfg, 50, 50, 20)
	b, _ := GenerateTwoSource(cfg, 50, 50, 20)
	for i := range a.D1 {
		if a.D1[i].EntityID != b.D1[i].EntityID ||
			a.D1[i].Values[0].Text != b.D1[i].Values[0].Text {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGenerateTwoSourceRecordFields(t *testing.T) {
	for _, domain := range []Domain{DomainProduct, DomainCitation, DomainVenue} {
		cfg := GeneratorConfig{Name: "f", Domain: domain, Seed: 13}
		ds, err := GenerateTwoSource(cfg, 20, 20, 10)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range append(append([]Record{}, ds.D1...), ds.D2...) {
			if len(rec.Values) != len(ds.Schema) {
				t.Fatalf("domain %d: record has %d values, schema %d", domain, len(rec.Values), len(ds.Schema))
			}
			for i, v := range rec.Values {
				if v.Missing {
					continue
				}
				if ds.Schema[i].Kind == Numeric {
					if v.Num == 0 && ds.Schema[i].Name == "price" {
						t.Errorf("zero price in %s", ds.Schema[i].Name)
					}
				} else if v.Text == "" {
					t.Errorf("empty %s", ds.Schema[i].Name)
				}
			}
		}
	}
}

func TestGenerateDedup(t *testing.T) {
	cfg := GeneratorConfig{Name: "dedup", Domain: DomainCitation, Seed: 14,
		Corruption: Corruption{Typo: 0.02}}
	ds, err := GenerateDedup(cfg, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 50 {
		t.Fatalf("records %d", len(ds.Records))
	}
	if ds.NumMatches() != 10*10 {
		t.Errorf("matches %d, want %d", ds.NumMatches(), 10*10)
	}
	if ds.NumPairs() != 50*49/2 {
		t.Errorf("pairs %d", ds.NumPairs())
	}
	// Count matches directly from EntityIDs.
	counts := make(map[int]int)
	for _, rec := range ds.Records {
		counts[rec.EntityID]++
	}
	direct := 0
	for _, c := range counts {
		direct += c * (c - 1) / 2
	}
	if direct != ds.NumMatches() {
		t.Errorf("NumMatches %d disagrees with direct count %d", ds.NumMatches(), direct)
	}
}

func TestGenerateDedupJitterProperty(t *testing.T) {
	f := func(seed uint64, clustersRaw, sizeRaw, jitterRaw uint8) bool {
		clusters := int(clustersRaw%20) + 1
		size := int(sizeRaw%10) + 1
		jitter := int(jitterRaw % 5)
		ds, err := GenerateDedup(GeneratorConfig{Seed: seed, Domain: DomainVenue}, clusters, size, jitter)
		if err != nil {
			return false
		}
		counts := make(map[int]int)
		for _, rec := range ds.Records {
			counts[rec.EntityID]++
		}
		direct := 0
		for _, c := range counts {
			direct += c * (c - 1) / 2
		}
		return direct == ds.NumMatches() && len(counts) <= clusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePoints(t *testing.T) {
	ds := GeneratePoints("pts", 15, 10000, 0.5, 1.0)
	if len(ds.X) != 10000 || len(ds.Labels) != 10000 {
		t.Fatal("size mismatch")
	}
	pos := ds.NumPositives()
	if pos < 4700 || pos > 5300 {
		t.Errorf("positives %d, want ~5000", pos)
	}
}

func TestProfilesCoverPaperTable(t *testing.T) {
	ps := Profiles(1)
	if len(ps) != 6 {
		t.Fatalf("profiles %d", len(ps))
	}
	wantNames := []string{"Amazon-GoogleProducts", "restaurant", "DBLP-ACM", "Abt-Buy", "cora", "tweets100k"}
	for i, p := range ps {
		if p.Name != wantNames[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, wantNames[i])
		}
		if p.Paper.PoolSize == 0 || p.Paper.F50 == 0 {
			t.Errorf("profile %s missing paper reference", p.Name)
		}
	}
	// Paper order is decreasing imbalance.
	for i := 1; i < len(ps); i++ {
		if ps[i].Paper.ImbalanceRatio > ps[i-1].Paper.ImbalanceRatio {
			t.Errorf("profiles not in decreasing imbalance at %d", i)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("cora", 1)
	if err != nil || p.Name != "cora" {
		t.Errorf("ProfileByName: %v %v", p.Name, err)
	}
	if _, err := ProfileByName("nope", 1); err == nil {
		t.Error("expected error for unknown profile")
	}
}

func TestProfileGenerateShapes(t *testing.T) {
	for _, p := range Profiles(2) {
		got, err := p.Generate()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		switch ds := got.(type) {
		case *TwoSourceDataset:
			if len(ds.D1) != p.N1 || len(ds.D2) != p.N2 {
				t.Errorf("%s: sizes %d/%d, want %d/%d", p.Name, len(ds.D1), len(ds.D2), p.N1, p.N2)
			}
			if ds.NumMatches() != p.Matched {
				t.Errorf("%s: matches %d, want %d", p.Name, ds.NumMatches(), p.Matched)
			}
		case *DedupDataset:
			if p.Name == "restaurant" {
				if len(ds.Records) != 864 {
					t.Errorf("restaurant records %d, want 864", len(ds.Records))
				}
				if ds.NumMatches() != 112 {
					t.Errorf("restaurant matches %d, want 112", ds.NumMatches())
				}
			}
			if p.Name == "cora" {
				if ds.NumMatches() < 20000 || ds.NumMatches() > 50000 {
					t.Errorf("cora matches %d, want ≈34k", ds.NumMatches())
				}
				if ds.ImbalanceRatio() < 30 || ds.ImbalanceRatio() > 70 {
					t.Errorf("cora imbalance %v, want ≈48", ds.ImbalanceRatio())
				}
			}
		case *PointsDataset:
			if len(ds.X) != p.NumPoints {
				t.Errorf("%s: points %d", p.Name, len(ds.X))
			}
		default:
			t.Errorf("%s: unexpected type %T", p.Name, got)
		}
	}
}

func TestFieldKindString(t *testing.T) {
	if ShortText.String() != "short_text" || LongText.String() != "long_text" ||
		Numeric.String() != "numeric" || FieldKind(99).String() != "unknown" {
		t.Error("FieldKind.String broken")
	}
}

func TestMatchedRecordsMoreSimilarThanRandom(t *testing.T) {
	// The whole premise of score-based evaluation: duplicate views of an
	// entity should share more name tokens than unrelated records.
	cfg := GeneratorConfig{Name: "sim", Domain: DomainProduct, Seed: 16,
		Corruption: Corruption{Typo: 0.02, TokenDrop: 0.1}}
	ds, err := GenerateTwoSource(cfg, 200, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]Record)
	for _, rec := range ds.D1 {
		byID[rec.EntityID] = rec
	}
	overlap := func(a, b string) float64 {
		ta := strings.Fields(a)
		tb := make(map[string]bool)
		for _, tok := range strings.Fields(b) {
			tb[tok] = true
		}
		n := 0
		for _, tok := range ta {
			if tb[tok] {
				n++
			}
		}
		if len(ta) == 0 {
			return 0
		}
		return float64(n) / float64(len(ta))
	}
	var matchSim, randSim float64
	nMatch, nRand := 0, 0
	for i, rec := range ds.D2 {
		if orig, ok := byID[rec.EntityID]; ok {
			matchSim += overlap(orig.Values[0].Text, rec.Values[0].Text)
			nMatch++
		}
		other := ds.D1[(i*17+3)%len(ds.D1)]
		if other.EntityID != rec.EntityID {
			randSim += overlap(other.Values[0].Text, rec.Values[0].Text)
			nRand++
		}
	}
	if nMatch == 0 || nRand == 0 {
		t.Fatal("no pairs compared")
	}
	if matchSim/float64(nMatch) <= randSim/float64(nRand)+0.2 {
		t.Errorf("matched similarity %.3f not clearly above random %.3f",
			matchSim/float64(nMatch), randSim/float64(nRand))
	}
}
