package dataset

import "fmt"

// Kind distinguishes the three dataset shapes used in the paper.
type Kind int

const (
	// TwoSource datasets match records across two databases.
	TwoSource Kind = iota
	// Dedup datasets match records within one database.
	Dedup
	// Points datasets are plain classification data (tweets100k).
	Points
)

// PaperReference records the values the paper reports for a dataset, used by
// the benchmark harness to print paper-vs-measured tables.
type PaperReference struct {
	// Table 1 values (full dataset).
	Pairs          int
	ImbalanceRatio float64
	Matches        int
	// Table 2 values (experiment pool).
	PoolSize      int
	PoolMatches   int
	PoolImbalance float64
	Precision     float64
	Recall        float64
	F50           float64 // F-measure at alpha = 1/2
}

// Profile describes one synthetic dataset mirroring a paper benchmark.
type Profile struct {
	Name string
	Kind Kind
	// Two-source shape.
	N1, N2, Matched int
	// Dedup shape.
	Clusters, MeanClusterSize, ClusterJitter int
	// Points shape.
	NumPoints int
	PosFrac   float64
	Overlap   float64
	// Generator tuning.
	Config GeneratorConfig
	// Paper gives the reference values for comparison output.
	Paper PaperReference
}

// Profiles returns the six dataset profiles of Table 1, in the paper's order
// (decreasing class imbalance). Corruption levels are tuned so that a linear
// SVM trained by the pipeline lands near the Table 2 operating points:
// heavy corruption for Amazon-GoogleProducts (F≈0.28) and Abt-Buy (F≈0.60),
// light corruption for DBLP-ACM (F≈0.95) and restaurant (F≈0.90).
func Profiles(seed uint64) []Profile {
	return []Profile{
		{
			Name: "Amazon-GoogleProducts",
			Kind: TwoSource,
			N1:   1363, N2: 3226, Matched: 1300,
			Config: GeneratorConfig{
				Name:      "Amazon-GoogleProducts",
				Domain:    DomainProduct,
				Seed:      seed + 1,
				BaseNoise: Corruption{Typo: 0.004, TokenDrop: 0.02, NumericJitter: 0.01},
				Corruption: Corruption{
					Typo: 0.035, TokenDrop: 0.30, TokenSwap: 0.35,
					Abbreviate: 0.12, Synonym: 0.22, NumericJitter: 0.35,
					MissingField: 0.25, Catastrophic: 0.74,
				},
				FamilySize: 2,
				Vocabulary: 500,
			},
			Paper: PaperReference{
				Pairs: 4397038, ImbalanceRatio: 3381, Matches: 1300,
				PoolSize: 676267, PoolMatches: 200, PoolImbalance: 3381,
				Precision: 0.597, Recall: 0.185, F50: 0.282,
			},
		},
		{
			Name: "restaurant",
			Kind: Dedup,
			// 112 duplicated venues of 2 listings plus 640 singletons
			// ≈ 864 records, 112 matched pairs — the guidebook shape.
			Clusters: 752, MeanClusterSize: 1, ClusterJitter: 0,
			Config: GeneratorConfig{
				Name:      "restaurant",
				Domain:    DomainVenue,
				Seed:      seed + 2,
				BaseNoise: Corruption{Typo: 0.003},
				Corruption: Corruption{
					Typo: 0.015, TokenDrop: 0.06, TokenSwap: 0.08,
					Abbreviate: 0.08, NumericJitter: 0.02, MissingField: 0.02,
					Catastrophic: 0.10,
				},
				FamilySize: 1,
				Vocabulary: 800,
			},
			Paper: PaperReference{
				Pairs: 745632, ImbalanceRatio: 3328, Matches: 224,
				PoolSize: 149747, PoolMatches: 45, PoolImbalance: 3328,
				Precision: 0.909, Recall: 0.888, F50: 0.899,
			},
		},
		{
			Name: "DBLP-ACM",
			Kind: TwoSource,
			N1:   2616, N2: 2294, Matched: 2224,
			Config: GeneratorConfig{
				Name:      "DBLP-ACM",
				Domain:    DomainCitation,
				Seed:      seed + 3,
				BaseNoise: Corruption{Typo: 0.002},
				Corruption: Corruption{
					Typo: 0.012, TokenDrop: 0.05, TokenSwap: 0.10,
					Abbreviate: 0.06, NumericJitter: 0.002, MissingField: 0.01,
					Catastrophic: 0.08,
				},
				FamilySize: 3,
				Vocabulary: 3000,
			},
			Paper: PaperReference{
				Pairs: 5998880, ImbalanceRatio: 2697, Matches: 2224,
				PoolSize: 53946, PoolMatches: 20, PoolImbalance: 2697,
				Precision: 1.0, Recall: 0.9, F50: 0.947,
			},
		},
		{
			Name: "Abt-Buy",
			Kind: TwoSource,
			N1:   1081, N2: 1092, Matched: 1097,
			Config: GeneratorConfig{
				Name:      "Abt-Buy",
				Domain:    DomainProduct,
				Seed:      seed + 4,
				BaseNoise: Corruption{Typo: 0.004, TokenDrop: 0.02},
				Corruption: Corruption{
					Typo: 0.025, TokenDrop: 0.22, TokenSwap: 0.25,
					Abbreviate: 0.10, Synonym: 0.12, NumericJitter: 0.20,
					MissingField: 0.15, Catastrophic: 0.55,
				},
				FamilySize: 2,
				Vocabulary: 700,
			},
			Paper: PaperReference{
				Pairs: 1180452, ImbalanceRatio: 1075, Matches: 1097,
				PoolSize: 53753, PoolMatches: 50, PoolImbalance: 1075,
				Precision: 0.916, Recall: 0.44, F50: 0.595,
			},
		},
		{
			Name: "cora",
			Kind: Dedup,
			// ~48 heavily cited papers with ~38 duplicate citations each:
			// 1831 records, ≈34k matching pairs, imbalance ≈ 48.
			Clusters: 48, MeanClusterSize: 38, ClusterJitter: 9,
			Config: GeneratorConfig{
				Name:      "cora",
				Domain:    DomainCitation,
				Seed:      seed + 5,
				BaseNoise: Corruption{Typo: 0.003},
				Corruption: Corruption{
					Typo: 0.02, TokenDrop: 0.12, TokenSwap: 0.15,
					Abbreviate: 0.18, NumericJitter: 0.004, MissingField: 0.06,
					Catastrophic: 0.09,
				},
				FamilySize: 2,
				Vocabulary: 450,
			},
			Paper: PaperReference{
				Pairs: 1675730, ImbalanceRatio: 47.76, Matches: 34368,
				PoolSize: 328291, PoolMatches: 6874, PoolImbalance: 47.76,
				Precision: 0.841, Recall: 0.837, F50: 0.839,
			},
		},
		{
			Name:      "tweets100k",
			Kind:      Points,
			NumPoints: 100000,
			PosFrac:   0.5,
			Overlap:   0.70,
			Config: GeneratorConfig{
				Name: "tweets100k",
				Seed: seed + 6,
			},
			Paper: PaperReference{
				Pairs: 100000, ImbalanceRatio: 1, Matches: 50000,
				PoolSize: 20000, PoolMatches: 10049, PoolImbalance: 0.9903,
				Precision: 0.762, Recall: 0.778, F50: 0.770,
			},
		},
	}
}

// ProfileByName returns the named profile or an error.
func ProfileByName(name string, seed uint64) (Profile, error) {
	for _, p := range Profiles(seed) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// restaurantDuplicated is the number of duplicated venues in the restaurant
// profile; see Generate.
const restaurantDuplicated = 112

// Generate materialises a profile into its dataset. The returned value is a
// *TwoSourceDataset, *DedupDataset or *PointsDataset depending on Kind.
func (p Profile) Generate() (any, error) {
	switch p.Kind {
	case TwoSource:
		return GenerateTwoSource(p.Config, p.N1, p.N2, p.Matched)
	case Dedup:
		if p.Name == "restaurant" {
			// Restaurant: mostly singleton venues plus a duplicated minority,
			// generated as clusters of variable size.
			return generateRestaurant(p)
		}
		return GenerateDedup(p.Config, p.Clusters, p.MeanClusterSize, p.ClusterJitter)
	case Points:
		return GeneratePoints(p.Name, p.Config.Seed, p.NumPoints, p.PosFrac, p.Overlap), nil
	default:
		return nil, fmt.Errorf("dataset: unknown kind %d", p.Kind)
	}
}

// generateRestaurant creates the guidebook-style dedup dataset: 112 venues
// listed twice and the remainder listed once (864 records, 112 matching
// pairs — the unordered-pair counterpart of the paper's 224 ordered matches).
func generateRestaurant(p Profile) (*DedupDataset, error) {
	cfg := p.Config
	ds, err := GenerateDedup(cfg, restaurantDuplicated, 2, 0)
	if err != nil {
		return nil, err
	}
	singles, err := GenerateDedup(GeneratorConfig{
		Name:       cfg.Name,
		Domain:     cfg.Domain,
		Seed:       cfg.Seed + 99,
		BaseNoise:  cfg.BaseNoise,
		Corruption: cfg.Corruption,
		FamilySize: cfg.FamilySize,
		Vocabulary: cfg.Vocabulary,
	}, 640, 1, 0)
	if err != nil {
		return nil, err
	}
	// Offset entity IDs of the singleton block so they cannot collide.
	offset := restaurantDuplicated
	for i := range singles.Records {
		singles.Records[i].EntityID += offset
		ds.Records = append(ds.Records, singles.Records[i])
	}
	return ds, nil
}
