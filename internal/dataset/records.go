package dataset

// FieldKind classifies a record field for feature extraction: short text is
// compared with trigram Jaccard, long text with tf-idf cosine, and numbers
// with normalised absolute difference (paper §6.1.2).
type FieldKind int

const (
	// ShortText fields (names, titles, addresses) use trigram Jaccard.
	ShortText FieldKind = iota
	// LongText fields (descriptions, abstracts) use tf-idf cosine.
	LongText
	// Numeric fields (prices, years) use normalised absolute difference.
	Numeric
)

// String returns the kind name.
func (k FieldKind) String() string {
	switch k {
	case ShortText:
		return "short_text"
	case LongText:
		return "long_text"
	case Numeric:
		return "numeric"
	default:
		return "unknown"
	}
}

// FieldSpec describes one field of a schema.
type FieldSpec struct {
	Name string
	Kind FieldKind
}

// Schema is an ordered list of fields shared by both sources of a dataset.
type Schema []FieldSpec

// Value is one field value of a record. Missing values are explicit, mirroring
// the paper's imputation step.
type Value struct {
	Text    string
	Num     float64
	Missing bool
}

// Record is a single database record: an entity reference plus field values.
// EntityID identifies the underlying ground-truth entity — two records match
// (are in the relation R) exactly when their EntityIDs are equal.
type Record struct {
	EntityID int
	Values   []Value
}
