// Package dataset generates the synthetic entity-resolution datasets that
// stand in for the paper's six benchmarks (Table 1): Abt-Buy,
// Amazon-GoogleProducts, DBLP-ACM, restaurant, cora and tweets100k. Real
// datasets are replaced by generators with matched sizes, match counts and
// class-imbalance ratios, and with corruption levels tuned so that trained
// classifiers land near the paper's Table 2 operating points. All generation
// is deterministic given a seed.
package dataset

import (
	"strings"

	"oasis/internal/rng"
)

// Lexicon is a deterministic pool of pronounceable pseudo-words used to
// synthesise names, descriptions, titles, venues and addresses. Using
// generated words (rather than embedded corpora) keeps the module dependency-
// free while producing realistic token-overlap statistics.
type Lexicon struct {
	words []string
}

var (
	consonants = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m",
		"n", "p", "r", "s", "t", "v", "w", "z", "ch", "sh", "th", "st", "br",
		"cr", "dr", "gr", "pl", "tr"}
	vowels = []string{"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"}
)

// NewLexicon deterministically generates n distinct pseudo-words of
// minSyl..maxSyl syllables from the given seed.
func NewLexicon(seed uint64, n, minSyl, maxSyl int) *Lexicon {
	if n <= 0 {
		n = 1
	}
	if minSyl <= 0 {
		minSyl = 1
	}
	if maxSyl < minSyl {
		maxSyl = minSyl
	}
	r := rng.New(seed)
	seen := make(map[string]struct{}, n)
	words := make([]string, 0, n)
	for len(words) < n {
		syls := minSyl + r.Intn(maxSyl-minSyl+1)
		var b strings.Builder
		for s := 0; s < syls; s++ {
			b.WriteString(consonants[r.Intn(len(consonants))])
			b.WriteString(vowels[r.Intn(len(vowels))])
		}
		// Occasionally close the word with a final consonant.
		if r.Bernoulli(0.4) {
			b.WriteString(consonants[r.Intn(18)]) // single-letter finals only
		}
		w := b.String()
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		words = append(words, w)
	}
	return &Lexicon{words: words}
}

// Size returns the number of words in the lexicon.
func (l *Lexicon) Size() int { return len(l.words) }

// Word draws one word uniformly.
func (l *Lexicon) Word(r *rng.RNG) string { return l.words[r.Intn(len(l.words))] }

// WordAt returns the i-th word (for deterministic constructions).
func (l *Lexicon) WordAt(i int) string { return l.words[i%len(l.words)] }

// Phrase draws n words joined by single spaces.
func (l *Lexicon) Phrase(r *rng.RNG, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = l.Word(r)
	}
	return strings.Join(parts, " ")
}

// ModelCode generates an alphanumeric model identifier such as "sx30b-210",
// mimicking the product codes that dominate e-commerce matching.
func ModelCode(r *rng.RNG) string {
	var b strings.Builder
	letters := "abcdefghjkmnprstvwxz"
	for i := 0; i < 2+r.Intn(2); i++ {
		b.WriteByte(letters[r.Intn(len(letters))])
	}
	for i := 0; i < 2+r.Intn(3); i++ {
		b.WriteByte(byte('0' + r.Intn(10)))
	}
	if r.Bernoulli(0.3) {
		b.WriteByte('-')
		for i := 0; i < 1+r.Intn(3); i++ {
			b.WriteByte(byte('0' + r.Intn(10)))
		}
	}
	return b.String()
}

// YearString returns a plausible publication year in [1985, 2016] as text.
func YearString(r *rng.RNG) string {
	year := 1985 + r.Intn(32)
	return itoa(year)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
