package dataset

import (
	"fmt"
	"strings"

	"oasis/internal/rng"
)

// Domain selects the surface form of generated entities.
type Domain int

const (
	// DomainProduct generates e-commerce products: name (brand + line +
	// model code), long description, price.
	DomainProduct Domain = iota
	// DomainCitation generates bibliographic records: title, authors,
	// venue, year.
	DomainCitation
	// DomainVenue generates restaurant-style listings: name, address,
	// cuisine type.
	DomainVenue
)

// GeneratorConfig controls synthetic two-source or dedup dataset generation.
type GeneratorConfig struct {
	Name   string
	Domain Domain
	// Seed drives all randomness in the generator.
	Seed uint64
	// Corruption applied to duplicate records (the second view of an entity).
	Corruption Corruption
	// BaseNoise is a light corruption applied to *every* record, so that even
	// the canonical view of an entity is imperfect.
	BaseNoise Corruption
	// FamilySize > 1 groups entities into families sharing brand/line tokens
	// (product variants), which creates confusable non-matches and drags
	// classifier precision down.
	FamilySize int
	// Vocabulary is the size of the description lexicon; smaller
	// vocabularies increase spurious token overlap between entities.
	Vocabulary int
}

// TwoSourceDataset is a synthetic counterpart of the paper's two-database ER
// benchmarks. Records in D1 and D2 match when their EntityIDs agree; the
// relation R is exactly the set of such cross-source pairs.
type TwoSourceDataset struct {
	Name    string
	Schema  Schema
	D1, D2  []Record
	matches int
}

// NumMatches returns |R|, the number of matching cross-source record pairs.
func (d *TwoSourceDataset) NumMatches() int { return d.matches }

// NumPairs returns |D1|·|D2|, the total number of candidate pairs.
func (d *TwoSourceDataset) NumPairs() int { return len(d.D1) * len(d.D2) }

// ImbalanceRatio returns (#non-matches : #matches) as a single float.
func (d *TwoSourceDataset) ImbalanceRatio() float64 {
	if d.matches == 0 {
		return 0
	}
	return float64(d.NumPairs()-d.matches) / float64(d.matches)
}

// schemaFor returns the field schema of a domain.
func schemaFor(domain Domain) Schema {
	switch domain {
	case DomainCitation:
		return Schema{
			{Name: "title", Kind: ShortText},
			{Name: "authors", Kind: ShortText},
			{Name: "venue", Kind: ShortText},
			{Name: "year", Kind: Numeric},
		}
	case DomainVenue:
		return Schema{
			{Name: "name", Kind: ShortText},
			{Name: "address", Kind: ShortText},
			{Name: "cuisine", Kind: ShortText},
		}
	default:
		return Schema{
			{Name: "name", Kind: ShortText},
			{Name: "description", Kind: LongText},
			{Name: "price", Kind: Numeric},
		}
	}
}

// entityFactory produces canonical field values for entity IDs.
type entityFactory struct {
	domain     Domain
	schema     Schema
	brands     *Lexicon
	lines      *Lexicon
	descWords  *Lexicon
	people     *Lexicon
	venues     *Lexicon
	placeNames *Lexicon
	streets    *Lexicon
	cuisines   *Lexicon
	family     int
}

func newEntityFactory(cfg GeneratorConfig) *entityFactory {
	vocab := cfg.Vocabulary
	if vocab <= 0 {
		vocab = 2000
	}
	fam := cfg.FamilySize
	if fam <= 0 {
		fam = 1
	}
	return &entityFactory{
		domain:     cfg.Domain,
		schema:     schemaFor(cfg.Domain),
		brands:     NewLexicon(cfg.Seed+101, 60, 1, 2),
		lines:      NewLexicon(cfg.Seed+102, 400, 1, 3),
		descWords:  NewLexicon(cfg.Seed+103, vocab, 1, 3),
		people:     NewLexicon(cfg.Seed+104, 2000, 1, 3),
		venues:     NewLexicon(cfg.Seed+105, 60, 1, 2),
		placeNames: NewLexicon(cfg.Seed+108, 2500, 1, 3),
		streets:    NewLexicon(cfg.Seed+106, 1200, 1, 2),
		cuisines:   NewLexicon(cfg.Seed+107, 60, 1, 2),
		family:     fam,
	}
}

// canonical generates the canonical values of entity id. Entities in the
// same family (id / familySize) share brand and line tokens and differ mainly
// in the model code, which makes non-matching pairs genuinely confusable.
func (f *entityFactory) canonical(id int, r *rng.RNG) []Value {
	famID := id / f.family
	switch f.domain {
	case DomainCitation:
		titleLen := 6 + r.Intn(7)
		title := f.descWords.Phrase(r, titleLen)
		nAuthors := 1 + r.Intn(4)
		authors := make([]string, nAuthors)
		for i := range authors {
			authors[i] = f.people.Word(r) + " " + f.people.Word(r)
		}
		venue := "proc " + f.venues.WordAt(famID%f.venues.Size()) + " conf"
		year := 1985 + r.Intn(32)
		return []Value{
			{Text: title},
			{Text: strings.Join(authors, " ")},
			{Text: venue},
			{Num: float64(year)},
		}
	case DomainVenue:
		// Two place-name words drawn deterministically per family keep venue
		// names distinct across entities while duplicates still collide fully.
		n1 := f.placeNames.WordAt(famID % f.placeNames.Size())
		n2 := f.placeNames.WordAt((famID*31 + 7) % f.placeNames.Size())
		name := n1 + " " + n2
		addr := fmt.Sprintf("%d %s st %s", 1+r.Intn(999), f.streets.Word(r), f.streets.Word(r))
		cuisine := f.cuisines.Word(r)
		return []Value{{Text: name}, {Text: addr}, {Text: cuisine}}
	default:
		brand := f.brands.WordAt(famID % f.brands.Size())
		line := f.lines.WordAt((famID / f.brands.Size()) % f.lines.Size())
		name := brand + " " + line + " " + ModelCode(r)
		descLen := 8 + r.Intn(20)
		desc := name + " " + f.descWords.Phrase(r, descLen)
		price := 5 + r.Exp()*120
		return []Value{{Text: name}, {Text: desc}, {Num: price}}
	}
}

// view derives a possibly-corrupted record view of canonical values. With
// probability c.Catastrophic the whole record is rewritten with the much
// harsher catastrophicRewrite corruption instead.
func (f *entityFactory) view(id int, canon []Value, c Corruption, r *rng.RNG) Record {
	if c.Catastrophic > 0 && r.Bernoulli(c.Catastrophic) {
		c = catastrophicRewrite
	}
	vals := make([]Value, len(canon))
	for i, v := range canon {
		if c.MissingField > 0 && r.Bernoulli(c.MissingField) {
			vals[i] = Value{Missing: true}
			continue
		}
		switch f.schema[i].Kind {
		case Numeric:
			vals[i] = Value{Num: CorruptNumber(v.Num, c, r)}
		default:
			vals[i] = Value{Text: CorruptText(v.Text, c, f.descWords, r)}
		}
	}
	return Record{EntityID: id, Values: vals}
}

// GenerateTwoSource builds a two-source dataset with n1 records in D1, n2 in
// D2, and exactly `matched` matching cross-source record pairs. When matched
// does not exceed min(n1, n2) every shared entity has one record per source;
// when it does (as in the real Abt-Buy, whose 1097 matches exceed its 1081
// Abt records), some shared entities receive an extra duplicate view in one
// source, each contributing one additional matching pair. The remaining
// records belong to entities unique to their source.
func GenerateTwoSource(cfg GeneratorConfig, n1, n2, matched int) (*TwoSourceDataset, error) {
	if n1 <= 0 || n2 <= 0 || matched < 0 {
		return nil, fmt.Errorf("dataset: invalid sizes n1=%d n2=%d matched=%d", n1, n2, matched)
	}
	// base 1:1 shared entities; extras are additional single-source views of
	// already-shared entities. Feasibility: matched ≤ n1 + n2 − base.
	base := matched
	if base > n1 {
		base = n1
	}
	if base > n2 {
		base = n2
	}
	if n1+n2-matched < base {
		base = n1 + n2 - matched
	}
	if base < 0 {
		return nil, fmt.Errorf("dataset: matched=%d infeasible for sizes (%d, %d)", matched, n1, n2)
	}
	extra := matched - base
	extra2 := extra
	if extra2 > n2-base {
		extra2 = n2 - base
	}
	extra1 := extra - extra2
	if extra1 > n1-base {
		return nil, fmt.Errorf("dataset: matched=%d infeasible for sizes (%d, %d)", matched, n1, n2)
	}
	r := rng.New(cfg.Seed)
	f := newEntityFactory(cfg)
	ds := &TwoSourceDataset{
		Name:    cfg.Name,
		Schema:  f.schema,
		D1:      make([]Record, 0, n1),
		D2:      make([]Record, 0, n2),
		matches: matched,
	}
	nextID := 0
	// Shared entities: one view in each source, plus extra duplicate views
	// for the first extra1/extra2 of them.
	for i := 0; i < base; i++ {
		canon := f.canonical(nextID, r)
		ds.D1 = append(ds.D1, f.view(nextID, canon, cfg.BaseNoise, r))
		ds.D2 = append(ds.D2, f.view(nextID, canon, cfg.Corruption, r))
		if i < extra2 {
			ds.D2 = append(ds.D2, f.view(nextID, canon, cfg.Corruption, r))
		} else if i-extra2 < extra1 {
			ds.D1 = append(ds.D1, f.view(nextID, canon, cfg.Corruption, r))
		}
		nextID++
	}
	// Source-exclusive entities.
	for len(ds.D1) < n1 {
		canon := f.canonical(nextID, r)
		ds.D1 = append(ds.D1, f.view(nextID, canon, cfg.BaseNoise, r))
		nextID++
	}
	for len(ds.D2) < n2 {
		canon := f.canonical(nextID, r)
		ds.D2 = append(ds.D2, f.view(nextID, canon, cfg.Corruption, r))
		nextID++
	}
	// Shuffle so matched records are not aligned by index.
	r.Shuffle(len(ds.D1), func(i, j int) { ds.D1[i], ds.D1[j] = ds.D1[j], ds.D1[i] })
	r.Shuffle(len(ds.D2), func(i, j int) { ds.D2[i], ds.D2[j] = ds.D2[j], ds.D2[i] })
	return ds, nil
}

// DedupDataset is a single-source dataset containing duplicate clusters,
// the synthetic counterpart of cora (and the restaurant guidebook data). The
// candidate pairs are the unordered pairs {i, j}, i < j, and a pair matches
// when both records share an EntityID.
type DedupDataset struct {
	Name    string
	Schema  Schema
	Records []Record
	matches int
}

// NumMatches returns the number of matching unordered pairs Σ C(c_i, 2).
func (d *DedupDataset) NumMatches() int { return d.matches }

// NumPairs returns C(n, 2).
func (d *DedupDataset) NumPairs() int {
	n := len(d.Records)
	return n * (n - 1) / 2
}

// ImbalanceRatio returns (#non-matches : #matches) as a single float.
func (d *DedupDataset) ImbalanceRatio() float64 {
	if d.matches == 0 {
		return 0
	}
	return float64(d.NumPairs()-d.matches) / float64(d.matches)
}

// GenerateDedup builds a dedup dataset of `clusters` entities whose cluster
// sizes are meanSize ± jitter (minimum 1), e.g. cora's ~48 clusters of ~38
// duplicate citations. Sizes are rebalanced after jittering so the total
// record count is exactly clusters × meanSize, keeping pair counts (and
// hence imbalance ratios) stable across seeds.
func GenerateDedup(cfg GeneratorConfig, clusters, meanSize, jitter int) (*DedupDataset, error) {
	if clusters <= 0 || meanSize <= 0 {
		return nil, fmt.Errorf("dataset: invalid dedup shape clusters=%d meanSize=%d", clusters, meanSize)
	}
	r := rng.New(cfg.Seed)
	f := newEntityFactory(cfg)
	ds := &DedupDataset{Name: cfg.Name, Schema: f.schema}
	sizes := make([]int, clusters)
	total := 0
	for id := range sizes {
		size := meanSize
		if jitter > 0 {
			size += r.Intn(2*jitter+1) - jitter
		}
		if size < 1 {
			size = 1
		}
		sizes[id] = size
		total += size
	}
	// Redistribute the jitter residue so Σ sizes = clusters × meanSize.
	target := clusters * meanSize
	for i := 0; total != target; i = (i + 1) % clusters {
		if total < target {
			sizes[i]++
			total++
		} else if sizes[i] > 1 {
			sizes[i]--
			total--
		}
	}
	for id, size := range sizes {
		canon := f.canonical(id, r)
		for v := 0; v < size; v++ {
			c := cfg.Corruption
			if v == 0 {
				c = cfg.BaseNoise
			}
			ds.Records = append(ds.Records, f.view(id, canon, c, r))
		}
		ds.matches += size * (size - 1) / 2
	}
	r.Shuffle(len(ds.Records), func(i, j int) {
		ds.Records[i], ds.Records[j] = ds.Records[j], ds.Records[i]
	})
	return ds, nil
}

// PointsDataset is a plain binary-classification dataset of feature vectors,
// the stand-in for tweets100k (§6.1.1): no record pairs, no imbalance — it
// exists to confirm the samplers tie in the balanced regime.
type PointsDataset struct {
	Name   string
	X      [][]float64
	Labels []bool
}

// GeneratePoints draws n points from two overlapping 2-D Gaussian classes
// with the given positive fraction. `overlap` (≥0) shrinks the separation so
// the Bayes error grows — tuned so classifiers land near F≈0.77 as in
// Table 2's tweets100k row.
func GeneratePoints(name string, seed uint64, n int, posFrac, overlap float64) *PointsDataset {
	r := rng.New(seed)
	sep := 2.0 / (1 + overlap)
	ds := &PointsDataset{
		Name:   name,
		X:      make([][]float64, n),
		Labels: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		pos := r.Bernoulli(posFrac)
		c := -sep / 2
		if pos {
			c = sep / 2
		}
		ds.X[i] = []float64{r.NormalScaled(c, 1), r.NormalScaled(c*0.5, 1.2)}
		ds.Labels[i] = pos
	}
	return ds
}

// NumPositives counts the positive labels.
func (d *PointsDataset) NumPositives() int {
	n := 0
	for _, l := range d.Labels {
		if l {
			n++
		}
	}
	return n
}
