package oasis_test

// Microbenchmarks for the public propose/commit hot path served by
// internal/server: batched proposals from a K=30 stratified pool, and the
// propose→commit cycle. Tracked in BENCH_core.json via `make bench-json`.

import (
	"testing"

	"oasis"
)

// benchSampler builds a sampler over an n-pair synthetic pool with K=30
// strata (the paper's default) and a warmed-up posterior.
func benchSampler(b *testing.B, n, warm int) (*oasis.Sampler, []bool) {
	b.Helper()
	scores, preds, truth, _ := syntheticScores(n, 3)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		b.Fatal(err)
	}
	s, err := oasis.NewSampler(p, oasis.Options{Strata: 30, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	for s.LabelsCommitted() < warm {
		pairs, err := s.ProposeBatch(warm - s.LabelsCommitted())
		if err != nil {
			b.Fatal(err)
		}
		for _, pair := range pairs {
			if err := s.CommitLabel(pair, truth[pair]); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s, truth
}

// BenchmarkProposeBatch measures drawing a batch of n proposals with no
// intervening commits — the GET /propose hot path. Proposals are released
// after each batch so the proposable supply (and the instrumental
// distribution) is steady; the per-op metric is one full batch.
func BenchmarkProposeBatch(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		b.Run(benchName(n), func(b *testing.B) {
			s, _ := benchSampler(b, 100_000, 200)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pairs, err := s.ProposeBatch(n)
				if err != nil {
					b.Fatal(err)
				}
				if len(pairs) != n {
					b.Fatalf("short batch: %d of %d", len(pairs), n)
				}
				b.StopTimer()
				for _, pair := range pairs {
					s.Release(pair)
				}
				b.StartTimer()
			}
		})
	}
}

func benchName(n int) string {
	switch n {
	case 1:
		return "n=1"
	case 64:
		return "n=64"
	default:
		return "n=1024"
	}
}

// BenchmarkProposeCommit measures the full cycle: propose a batch of 64,
// commit every label (which re-adapts the instrumental distribution). The
// sampler is rebuilt off the clock when the pool nears exhaustion.
func BenchmarkProposeCommit(b *testing.B) {
	const n = 64
	s, truth := benchSampler(b, 200_000, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.LabelsCommitted() > 150_000 {
			b.StopTimer()
			s, truth = benchSampler(b, 200_000, 200)
			b.StartTimer()
		}
		pairs, err := s.ProposeBatch(n)
		if err != nil {
			b.Fatal(err)
		}
		for _, pair := range pairs {
			if err := s.CommitLabel(pair, truth[pair]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
