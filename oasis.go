package oasis

import (
	"errors"
	"fmt"

	"oasis/internal/core"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/strata"
)

// ScoreKind declares how a pool's similarity scores should be interpreted.
type ScoreKind int

const (
	// UncalibratedScores are raw real-valued scores (e.g. SVM margins);
	// they are mapped to probabilities through a logistic transform around
	// the decision threshold when the algorithm needs probabilities.
	UncalibratedScores ScoreKind = iota
	// CalibratedScores are probabilities in [0, 1] (Definition 3 of the
	// paper): of the pairs scored ρ, about 100ρ% are matches.
	CalibratedScores
)

// Pool is an evaluation pool: one similarity score and one predicted label
// per candidate record pair. Build one with NewPool.
type Pool struct {
	inner *pool.Pool
}

// NewPool builds an evaluation pool from parallel slices of similarity
// scores and predicted labels. For UncalibratedScores the decision threshold
// is taken to be 0; use NewPoolThreshold to override.
func NewPool(scores []float64, preds []bool, kind ScoreKind) (*Pool, error) {
	return NewPoolThreshold(scores, preds, kind, 0)
}

// NewPoolThreshold is NewPool with an explicit score threshold τ used by the
// logistic mapping of uncalibrated scores (Algorithm 2 line 4).
func NewPoolThreshold(scores []float64, preds []bool, kind ScoreKind, threshold float64) (*Pool, error) {
	if len(scores) != len(preds) {
		return nil, fmt.Errorf("oasis: %d scores but %d predictions", len(scores), len(preds))
	}
	p := &pool.Pool{
		Scores:        append([]float64(nil), scores...),
		Preds:         append([]bool(nil), preds...),
		TruthProb:     make([]float64, len(scores)),
		Probabilistic: kind == CalibratedScores,
		Threshold:     threshold,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Pool{inner: p}, nil
}

// N returns the number of record pairs in the pool.
func (p *Pool) N() int { return p.inner.N() }

// NumPredPositives returns the number of predicted matches.
func (p *Pool) NumPredPositives() int { return p.inner.NumPredPositives() }

// Internal exposes the internal pool to sibling packages (erbench); it is
// not part of the supported public surface.
func (p *Pool) Internal() *pool.Pool { return p.inner }

// WrapPool adapts an internal pool (e.g. one built by erbench) to the public
// Pool type.
func WrapPool(inner *pool.Pool) *Pool { return &Pool{inner: inner} }

// StratifierKind selects the stratification rule.
type StratifierKind int

const (
	// CSFStratifier is the Cumulative √F rule of Dalenius & Hodges used by
	// the paper (Algorithm 1). Default.
	CSFStratifier StratifierKind = iota
	// EqualSizeStratifier cuts the score-sorted pool into equal-size strata.
	EqualSizeStratifier
)

// Options configures an OASIS sampler (Algorithm 3's inputs).
type Options struct {
	// Alpha is the F-measure weight: 1 estimates precision and 0.5 (or the
	// zero value, the default) the balanced F-measure. To estimate recall
	// (α = 0) set Recall instead, since 0 is the "unset" value.
	Alpha float64
	// Recall requests α = 0 (recall estimation), overriding Alpha.
	Recall bool
	// Epsilon is the ε-greedy exploration rate in (0, 1]; default 1e-3
	// (the paper's setting).
	Epsilon float64
	// Strata is the target number of strata K; default 30 (the paper finds
	// 30–60 works well across datasets).
	Strata int
	// StrataBins is the histogram resolution for the CSF rule; 0 picks a
	// sensible default.
	StrataBins int
	// Stratifier selects the stratification rule; default CSF.
	Stratifier StratifierKind
	// PriorStrength is η, the pseudo-count weight of the score-based Beta
	// prior; 0 means the paper's default 2K.
	PriorStrength float64
	// NoPriorDecay disables the Remark 4 modification (prior influence
	// decaying as labels accumulate). Decay is on by default; disabling it
	// reproduces the paper's bare Algorithm 3.
	NoPriorDecay bool
	// PosteriorEstimate reports the stratified posterior plug-in estimate
	// instead of the importance-weighted AIS ratio of Eqn. (3).
	PosteriorEstimate bool
	// Seed drives all sampling randomness.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Recall {
		o.Alpha = 0
	} else if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Strata <= 0 {
		o.Strata = 30
	}
	return o
}

// OracleFunc returns the (possibly noisy) true label of pool pair i. It is
// the caller's interface to the labelling resource — a crowd, an expert, or
// ground truth in experiments.
type OracleFunc func(i int) bool

// Label implements the internal oracle interface.
func (f OracleFunc) Label(i int) bool { return f(i) }

// Result summarises a sampling run.
type Result struct {
	// FMeasure is the final estimate F̂_α.
	FMeasure float64
	// LabelsConsumed is the number of distinct pairs labelled.
	LabelsConsumed int
	// Iterations is the number of sampling steps taken (≥ LabelsConsumed;
	// sampling is with replacement and cached labels are free).
	Iterations int
}

// Sampler is the OASIS adaptive importance sampler over a pool.
type Sampler struct {
	inner *core.Sampler
	str   *strata.Strata
}

// NewSampler stratifies the pool and initialises OASIS from its scores
// (Algorithms 1 and 2), returning a ready-to-run sampler.
func NewSampler(p *Pool, opts Options) (*Sampler, error) {
	opts = opts.withDefaults()
	var (
		s   *strata.Strata
		err error
	)
	switch opts.Stratifier {
	case EqualSizeStratifier:
		s, err = strata.EqualSize(p.inner, opts.Strata)
	default:
		s, err = strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	}
	if err != nil {
		return nil, err
	}
	inner, err := core.New(p.inner, s, core.Config{
		Alpha:             opts.Alpha,
		Epsilon:           opts.Epsilon,
		PriorStrength:     opts.PriorStrength,
		DisablePriorDecay: opts.NoPriorDecay,
		PosteriorEstimate: opts.PosteriorEstimate,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Sampler{inner: inner, str: s}, nil
}

// K returns the realised number of strata (≤ Options.Strata).
func (s *Sampler) K() int { return s.inner.K() }

// InitialEstimate returns the score-based initial F̂(0) of Algorithm 2.
func (s *Sampler) InitialEstimate() float64 { return s.inner.InitialF() }

// Estimate returns the current F-measure estimate.
func (s *Sampler) Estimate() float64 { return s.inner.Estimate() }

// Run performs adaptive sampling until `budget` distinct pairs have been
// labelled by the oracle (or the pool is exhausted), and returns the final
// estimate. Run may be called repeatedly to continue with a fresh budget;
// labels already purchased are remembered across calls only within a single
// Run's cache, matching the paper's accounting.
func (s *Sampler) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(s.inner, o, budget)
}

// Step performs a single iteration of Algorithm 3 against a budgeted oracle.
// Most callers should use Run; Step exists for callers integrating OASIS
// into their own labelling loops.
func (s *Sampler) Step(b *Budgeted) error { return s.inner.Step(b.inner) }

// Budgeted wraps an OracleFunc with label caching and budget accounting.
type Budgeted struct {
	inner *oracle.Budgeted
}

// NewBudgeted wraps o with a budget; non-positive budget means unlimited.
func NewBudgeted(o OracleFunc, budget int) *Budgeted {
	return &Budgeted{inner: oracle.NewBudgeted(o, budget)}
}

// Consumed returns the number of distinct pairs labelled.
func (b *Budgeted) Consumed() int { return b.inner.Consumed() }

// Exhausted reports whether the budget has been used up.
func (b *Budgeted) Exhausted() bool { return b.inner.Exhausted() }

// ErrBudgetExhausted is returned by Step when a fresh label would exceed the
// budget.
var ErrBudgetExhausted = oracle.ErrBudgetExhausted

// Method is a generic sequential evaluation method (OASIS or a baseline).
type Method struct {
	inner sampler.Method
}

// Name returns the method's display name.
func (m *Method) Name() string { return m.inner.Name() }

// Estimate returns the method's current F̂.
func (m *Method) Estimate() float64 { return m.inner.Estimate() }

// Run drives the method until the label budget is consumed.
func (m *Method) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(m.inner, o, budget)
}

// runLoop drives any method until the budget is consumed, with a safety cap
// on iterations (with-replacement draws of cached pairs are free, so a
// method can legitimately take more iterations than budget).
func runLoop(m sampler.Method, o OracleFunc, budget int) (*Result, error) {
	if budget <= 0 {
		return nil, errors.New("oasis: budget must be positive")
	}
	b := oracle.NewBudgeted(o, budget)
	iters := 0
	maxIters := 200*budget + 1000
	for b.Consumed() < budget && iters < maxIters {
		err := m.Step(b)
		if err == oracle.ErrBudgetExhausted {
			break
		}
		if err != nil {
			return nil, err
		}
		iters++
	}
	return &Result{
		FMeasure:       m.Estimate(),
		LabelsConsumed: b.Consumed(),
		Iterations:     iters,
	}, nil
}

// NewPassiveSampler returns the passive (uniform) baseline method.
func NewPassiveSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.withDefaults()
	return &Method{inner: sampler.NewPassive(p.inner, opts.Alpha, rng.New(opts.Seed))}, nil
}

// NewStratifiedSampler returns the proportional stratified baseline of
// Druck & McCallum as configured in the paper's §6.2 (CSF strata, K = 30 by
// default).
func NewStratifiedSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.withDefaults()
	s, err := strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	if err != nil {
		return nil, err
	}
	m, err := sampler.NewStratified(p.inner, s.Weights, s.MeanPred, s.Items, opts.Alpha, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// NewISSampler returns the static importance-sampling baseline of Sawade et
// al.: a fixed instrumental distribution computed once from the scores.
func NewISSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.withDefaults()
	m, err := sampler.NewIS(p.inner, sampler.ISConfig{
		Alpha:   opts.Alpha,
		Epsilon: opts.Epsilon,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// AsMethod adapts the OASIS sampler to the generic Method type, e.g. for
// running OASIS and baselines through the same loop.
func (s *Sampler) AsMethod() *Method { return &Method{inner: s.inner} }
