package oasis

import (
	"errors"
	"fmt"

	"oasis/internal/core"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/strata"
)

// ScoreKind declares how a pool's similarity scores should be interpreted.
type ScoreKind int

const (
	// UncalibratedScores are raw real-valued scores (e.g. SVM margins);
	// they are mapped to probabilities through a logistic transform around
	// the decision threshold when the algorithm needs probabilities.
	UncalibratedScores ScoreKind = iota
	// CalibratedScores are probabilities in [0, 1] (Definition 3 of the
	// paper): of the pairs scored ρ, about 100ρ% are matches.
	CalibratedScores
)

// Pool is an evaluation pool: one similarity score and one predicted label
// per candidate record pair. Build one with NewPool.
type Pool struct {
	inner *pool.Pool
}

// NewPool builds an evaluation pool from parallel slices of similarity
// scores and predicted labels. For UncalibratedScores the decision threshold
// is taken to be 0; use NewPoolThreshold to override.
func NewPool(scores []float64, preds []bool, kind ScoreKind) (*Pool, error) {
	return NewPoolThreshold(scores, preds, kind, 0)
}

// NewPoolThreshold is NewPool with an explicit score threshold τ used by the
// logistic mapping of uncalibrated scores (Algorithm 2 line 4).
func NewPoolThreshold(scores []float64, preds []bool, kind ScoreKind, threshold float64) (*Pool, error) {
	if len(scores) != len(preds) {
		return nil, fmt.Errorf("oasis: %d scores but %d predictions", len(scores), len(preds))
	}
	p := &pool.Pool{
		Scores:        append([]float64(nil), scores...),
		Preds:         append([]bool(nil), preds...),
		TruthProb:     make([]float64, len(scores)),
		Probabilistic: kind == CalibratedScores,
		Threshold:     threshold,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Pool{inner: p}, nil
}

// N returns the number of record pairs in the pool.
func (p *Pool) N() int { return p.inner.N() }

// NumPredPositives returns the number of predicted matches.
func (p *Pool) NumPredPositives() int { return p.inner.NumPredPositives() }

// Internal exposes the internal pool to sibling packages (erbench); it is
// not part of the supported public surface.
func (p *Pool) Internal() *pool.Pool { return p.inner }

// WrapPool adapts an internal pool (e.g. one built by erbench) to the public
// Pool type.
func WrapPool(inner *pool.Pool) *Pool { return &Pool{inner: inner} }

// StratifierKind selects the stratification rule.
type StratifierKind int

const (
	// CSFStratifier is the Cumulative √F rule of Dalenius & Hodges used by
	// the paper (Algorithm 1). Default.
	CSFStratifier StratifierKind = iota
	// EqualSizeStratifier cuts the score-sorted pool into equal-size strata.
	EqualSizeStratifier
)

// Options configures an OASIS sampler (Algorithm 3's inputs).
type Options struct {
	// Alpha is the F-measure weight: 1 estimates precision and 0.5 (or the
	// zero value, the default) the balanced F-measure. To estimate recall
	// (α = 0) set Recall instead, since 0 is the "unset" value.
	Alpha float64
	// Recall requests α = 0 (recall estimation), overriding Alpha.
	Recall bool
	// Epsilon is the ε-greedy exploration rate in (0, 1]; default 1e-3
	// (the paper's setting).
	Epsilon float64
	// Strata is the target number of strata K; default 30 (the paper finds
	// 30–60 works well across datasets).
	Strata int
	// StrataBins is the histogram resolution for the CSF rule; 0 picks a
	// sensible default.
	StrataBins int
	// Stratifier selects the stratification rule; default CSF.
	Stratifier StratifierKind
	// PriorStrength is η, the pseudo-count weight of the score-based Beta
	// prior; 0 means the paper's default 2K.
	PriorStrength float64
	// NoPriorDecay disables the Remark 4 modification (prior influence
	// decaying as labels accumulate). Decay is on by default; disabling it
	// reproduces the paper's bare Algorithm 3.
	NoPriorDecay bool
	// PosteriorEstimate reports the stratified posterior plug-in estimate
	// instead of the importance-weighted AIS ratio of Eqn. (3).
	PosteriorEstimate bool
	// Seed drives all sampling randomness.
	Seed uint64
}

// WithDefaults resolves the zero-value conventions: Recall forces α = 0,
// an unset Alpha becomes the balanced 0.5, an unset Strata becomes 30. It
// is what NewSampler and the baseline constructors apply; external layers
// (e.g. the session subsystem) use it to interpret Options identically.
func (o Options) WithDefaults() Options {
	if o.Recall {
		o.Alpha = 0
	} else if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Strata <= 0 {
		o.Strata = 30
	}
	return o
}

// OracleFunc returns the (possibly noisy) true label of pool pair i. It is
// the caller's interface to the labelling resource — a crowd, an expert, or
// ground truth in experiments.
type OracleFunc func(i int) bool

// Label implements the internal oracle interface.
func (f OracleFunc) Label(i int) bool { return f(i) }

// Result summarises a sampling run.
type Result struct {
	// FMeasure is the final estimate F̂_α.
	FMeasure float64
	// LabelsConsumed is the number of distinct pairs labelled.
	LabelsConsumed int
	// Iterations is the number of sampling steps taken (≥ LabelsConsumed;
	// sampling is with replacement and cached labels are free).
	Iterations int
}

// Sampler is the OASIS adaptive importance sampler over a pool.
//
// A Sampler can be driven two ways: synchronously, with Run/Step pulling
// labels from an OracleFunc, or asynchronously, with ProposeBatch/CommitLabel
// pushing labels in as an external labelling resource (a crowd, a service
// queue) produces them. A Sampler is not safe for concurrent use; the
// session subsystem (internal/session, served by cmd/oasis-server) adds
// locking, leases and persistence on top.
type Sampler struct {
	inner *core.Sampler
	str   *strata.Strata

	// Propose/commit bookkeeping: pending maps an outstanding proposed pair
	// to every draw awaiting its label (with-replacement re-draws of an
	// outstanding pair queue additional weighted terms); labels caches
	// committed labels, mirroring the Budgeted oracle's first-query cache.
	pending map[int][]core.Draw
	labels  map[int]bool
}

// NewSampler stratifies the pool and initialises OASIS from its scores
// (Algorithms 1 and 2), returning a ready-to-run sampler.
func NewSampler(p *Pool, opts Options) (*Sampler, error) {
	opts = opts.WithDefaults()
	var (
		s   *strata.Strata
		err error
	)
	switch opts.Stratifier {
	case EqualSizeStratifier:
		s, err = strata.EqualSize(p.inner, opts.Strata)
	default:
		s, err = strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	}
	if err != nil {
		return nil, err
	}
	inner, err := core.New(p.inner, s, core.Config{
		Alpha:             opts.Alpha,
		Epsilon:           opts.Epsilon,
		PriorStrength:     opts.PriorStrength,
		DisablePriorDecay: opts.NoPriorDecay,
		PosteriorEstimate: opts.PosteriorEstimate,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Sampler{
		inner:   inner,
		str:     s,
		pending: make(map[int][]core.Draw),
		labels:  make(map[int]bool),
	}, nil
}

// K returns the realised number of strata (≤ Options.Strata).
func (s *Sampler) K() int { return s.inner.K() }

// InitialEstimate returns the score-based initial F̂(0) of Algorithm 2.
func (s *Sampler) InitialEstimate() float64 { return s.inner.InitialF() }

// Estimate returns the current F-measure estimate.
func (s *Sampler) Estimate() float64 { return s.inner.Estimate() }

// Run performs adaptive sampling until `budget` distinct pairs have been
// labelled by the oracle (or the pool is exhausted), and returns the final
// estimate. Run may be called repeatedly to continue with a fresh budget;
// labels already purchased are remembered across calls only within a single
// Run's cache, matching the paper's accounting.
func (s *Sampler) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(s.inner, o, budget)
}

// Step performs a single iteration of Algorithm 3 against a budgeted oracle.
// Most callers should use Run; Step exists for callers integrating OASIS
// into their own labelling loops.
func (s *Sampler) Step(b *Budgeted) error { return s.inner.Step(b.inner) }

// ErrNotProposed is returned by CommitLabel for a pair that has no
// outstanding proposal and no cached label — e.g. a proposal whose lease was
// released before the label arrived.
var ErrNotProposed = errors.New("oasis: pair was not proposed (or its proposal was released)")

// ProposeBatch draws up to n distinct unlabelled pairs from the current
// instrumental distribution and returns their pool indices, marking each as
// an outstanding proposal. It is the asynchronous, batched counterpart of
// Step: the caller routes the proposed pairs to its labelling resource and
// feeds answers back through CommitLabel in any order.
//
// Sampling is with replacement, exactly as in Algorithm 3: a re-draw of an
// already-committed pair is folded into the estimate immediately with its
// cached label (a "free" draw in the paper's budget accounting), and a
// re-draw of a still-outstanding pair queues an additional weighted term
// that is applied when that pair's label arrives. Each draw's importance
// weight is frozen at draw time, so batching leaves the estimator unchanged;
// only the adaptation happens in batch steps rather than per label.
//
// The result may be shorter than n when the pool is (nearly) exhausted: the
// draw loop gives up after MaxDraws(n) with-replacement draws.
func (s *Sampler) ProposeBatch(n int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("oasis: batch size must be positive")
	}
	batch := make([]int, 0, n)
	for draws := 0; len(batch) < n && draws < MaxDraws(n); draws++ {
		d, err := s.inner.Draw()
		if err != nil {
			return batch, err
		}
		if label, ok := s.labels[d.Pair]; ok {
			s.inner.Commit(d, label)
			continue
		}
		if _, outstanding := s.pending[d.Pair]; outstanding {
			s.pending[d.Pair] = append(s.pending[d.Pair], d)
			continue
		}
		s.pending[d.Pair] = []core.Draw{d}
		batch = append(batch, d.Pair)
	}
	return batch, nil
}

// CommitLabel applies the label of a previously proposed pair, updating the
// Beta posterior and the running estimate once per draw that was awaiting
// it. Committing an already-committed pair is a no-op (the first label
// wins, mirroring the Budgeted oracle's cache); committing a pair that was
// never proposed — or whose proposal was released — returns ErrNotProposed.
func (s *Sampler) CommitLabel(pair int, label bool) error {
	if _, done := s.labels[pair]; done {
		return nil
	}
	draws, ok := s.pending[pair]
	if !ok {
		return ErrNotProposed
	}
	delete(s.pending, pair)
	s.labels[pair] = label
	for _, d := range draws {
		s.inner.Commit(d, label)
	}
	return nil
}

// Release drops the outstanding proposal for a pair without committing a
// label, returning whether the pair was outstanding. The pair becomes
// proposable again; its queued draws are discarded, which does not bias the
// estimator (discarding draws independently of their labels preserves
// consistency). The session layer calls this when a proposal's lease
// expires.
func (s *Sampler) Release(pair int) bool {
	if _, ok := s.pending[pair]; !ok {
		return false
	}
	delete(s.pending, pair)
	return true
}

// Pending returns the pool indices of outstanding proposals (in no
// particular order).
func (s *Sampler) Pending() []int {
	out := make([]int, 0, len(s.pending))
	for i := range s.pending {
		out = append(out, i)
	}
	return out
}

// LabelsCommitted returns the number of distinct pairs committed through
// CommitLabel — the propose/commit analogue of Result.LabelsConsumed.
func (s *Sampler) LabelsCommitted() int { return len(s.labels) }

// CommittedLabels returns a copy of the committed pair→label cache, e.g.
// for snapshotting.
func (s *Sampler) CommittedLabels() map[int]bool {
	out := make(map[int]bool, len(s.labels))
	for i, l := range s.labels {
		out[i] = l
	}
	return out
}

// SamplerState is a JSON-serialisable snapshot of a Sampler's mutable state:
// Beta posteriors, estimator sums, the random stream, and the committed
// label cache. Outstanding proposals are deliberately NOT persisted — on
// restore they are released back to the proposable set, which is the
// crash-safe behaviour (an in-flight proposal whose label never arrived must
// become proposable again). Restore a state only onto a Sampler built from
// the same pool with the same Options.
type SamplerState struct {
	Core   *core.State  `json:"core"`
	Labels map[int]bool `json:"labels,omitempty"`
}

// State captures the sampler's mutable state for persistence.
func (s *Sampler) State() *SamplerState {
	return &SamplerState{Core: s.inner.State(), Labels: s.CommittedLabels()}
}

// RestoreState overwrites the sampler's mutable state from a snapshot taken
// on a sampler with the same pool and Options. Outstanding proposals (on
// either side) are discarded.
func (s *Sampler) RestoreState(st *SamplerState) error {
	if st == nil || st.Core == nil {
		return errors.New("oasis: nil sampler state")
	}
	if err := s.inner.Restore(st.Core); err != nil {
		return err
	}
	s.pending = make(map[int][]core.Draw)
	s.labels = make(map[int]bool, len(st.Labels))
	for i, l := range st.Labels {
		s.labels[i] = l
	}
	return nil
}

// Budgeted wraps an OracleFunc with label caching and budget accounting.
type Budgeted struct {
	inner *oracle.Budgeted
}

// NewBudgeted wraps o with a budget; non-positive budget means unlimited.
func NewBudgeted(o OracleFunc, budget int) *Budgeted {
	return &Budgeted{inner: oracle.NewBudgeted(o, budget)}
}

// Consumed returns the number of distinct pairs labelled.
func (b *Budgeted) Consumed() int { return b.inner.Consumed() }

// Exhausted reports whether the budget has been used up.
func (b *Budgeted) Exhausted() bool { return b.inner.Exhausted() }

// ErrBudgetExhausted is returned by Step when a fresh label would exceed the
// budget.
var ErrBudgetExhausted = oracle.ErrBudgetExhausted

// Method is a generic sequential evaluation method (OASIS or a baseline).
type Method struct {
	inner sampler.Method
}

// Name returns the method's display name.
func (m *Method) Name() string { return m.inner.Name() }

// Estimate returns the method's current F̂.
func (m *Method) Estimate() float64 { return m.inner.Estimate() }

// Run drives the method until the label budget is consumed.
func (m *Method) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(m.inner, o, budget)
}

// Sampling is with replacement and cached (already-labelled) pairs are free,
// so a run can legitimately take more draws than its label budget — e.g.
// once a heavy stratum is fully labelled, every re-draw from it consumes no
// budget. The cap below bounds the draw count so a degenerate instrumental
// distribution (all mass on labelled pairs) terminates instead of spinning:
// MaxDrawFactor draws per budgeted label, plus MaxDrawSlack to keep tiny
// budgets from being cut off early. Shared by runLoop, Sampler.ProposeBatch
// and the session run loop.
const (
	// MaxDrawFactor bounds with-replacement draws per budgeted label.
	MaxDrawFactor = 200
	// MaxDrawSlack is the additive slack for small budgets.
	MaxDrawSlack = 1000
)

// MaxDraws returns the draw cap for a run (or proposal batch) targeting n
// fresh labels: MaxDrawFactor*n + MaxDrawSlack.
func MaxDraws(n int) int { return MaxDrawFactor*n + MaxDrawSlack }

// runLoop drives any method until the budget is consumed, with a safety cap
// on iterations (with-replacement draws of cached pairs are free, so a
// method can legitimately take more iterations than budget).
func runLoop(m sampler.Method, o OracleFunc, budget int) (*Result, error) {
	if budget <= 0 {
		return nil, errors.New("oasis: budget must be positive")
	}
	b := oracle.NewBudgeted(o, budget)
	iters := 0
	maxIters := MaxDraws(budget)
	for b.Consumed() < budget && iters < maxIters {
		err := m.Step(b)
		if err == oracle.ErrBudgetExhausted {
			break
		}
		if err != nil {
			return nil, err
		}
		iters++
	}
	return &Result{
		FMeasure:       m.Estimate(),
		LabelsConsumed: b.Consumed(),
		Iterations:     iters,
	}, nil
}

// NewPassiveSampler returns the passive (uniform) baseline method.
func NewPassiveSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	return &Method{inner: sampler.NewPassive(p.inner, opts.Alpha, rng.New(opts.Seed))}, nil
}

// NewStratifiedSampler returns the proportional stratified baseline of
// Druck & McCallum as configured in the paper's §6.2 (CSF strata, K = 30 by
// default).
func NewStratifiedSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	s, err := strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	if err != nil {
		return nil, err
	}
	m, err := sampler.NewStratified(p.inner, s.Weights, s.MeanPred, s.Items, opts.Alpha, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// NewISSampler returns the static importance-sampling baseline of Sawade et
// al.: a fixed instrumental distribution computed once from the scores.
func NewISSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	m, err := sampler.NewIS(p.inner, sampler.ISConfig{
		Alpha:   opts.Alpha,
		Epsilon: opts.Epsilon,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// AsMethod adapts the OASIS sampler to the generic Method type, e.g. for
// running OASIS and baselines through the same loop.
func (s *Sampler) AsMethod() *Method { return &Method{inner: s.inner} }
