package oasis

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"oasis/internal/core"
	"oasis/internal/diag"
	"oasis/internal/oracle"
	"oasis/internal/pool"
	"oasis/internal/rng"
	"oasis/internal/sampler"
	"oasis/internal/strata"
)

// ScoreKind declares how a pool's similarity scores should be interpreted.
type ScoreKind int

const (
	// UncalibratedScores are raw real-valued scores (e.g. SVM margins);
	// they are mapped to probabilities through a logistic transform around
	// the decision threshold when the algorithm needs probabilities.
	UncalibratedScores ScoreKind = iota
	// CalibratedScores are probabilities in [0, 1] (Definition 3 of the
	// paper): of the pairs scored ρ, about 100ρ% are matches.
	CalibratedScores
)

// Pool is an evaluation pool: one similarity score and one predicted label
// per candidate record pair. Build one with NewPool.
type Pool struct {
	inner *pool.Pool
}

// NewPool builds an evaluation pool from parallel slices of similarity
// scores and predicted labels. For UncalibratedScores the decision threshold
// is taken to be 0; use NewPoolThreshold to override.
func NewPool(scores []float64, preds []bool, kind ScoreKind) (*Pool, error) {
	return NewPoolThreshold(scores, preds, kind, 0)
}

// NewPoolThreshold is NewPool with an explicit score threshold τ used by the
// logistic mapping of uncalibrated scores (Algorithm 2 line 4).
func NewPoolThreshold(scores []float64, preds []bool, kind ScoreKind, threshold float64) (*Pool, error) {
	if len(scores) != len(preds) {
		return nil, fmt.Errorf("oasis: %d scores but %d predictions", len(scores), len(preds))
	}
	p := &pool.Pool{
		Scores:        append([]float64(nil), scores...),
		Preds:         append([]bool(nil), preds...),
		TruthProb:     make([]float64, len(scores)),
		Probabilistic: kind == CalibratedScores,
		Threshold:     threshold,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Pool{inner: p}, nil
}

// N returns the number of record pairs in the pool.
func (p *Pool) N() int { return p.inner.N() }

// NumPredPositives returns the number of predicted matches.
func (p *Pool) NumPredPositives() int { return p.inner.NumPredPositives() }

// Internal exposes the internal pool to sibling packages (erbench); it is
// not part of the supported public surface.
func (p *Pool) Internal() *pool.Pool { return p.inner }

// WrapPool adapts an internal pool (e.g. one built by erbench) to the public
// Pool type.
func WrapPool(inner *pool.Pool) *Pool { return &Pool{inner: inner} }

// StratifierKind selects the stratification rule.
type StratifierKind int

const (
	// CSFStratifier is the Cumulative √F rule of Dalenius & Hodges used by
	// the paper (Algorithm 1). Default.
	CSFStratifier StratifierKind = iota
	// EqualSizeStratifier cuts the score-sorted pool into equal-size strata.
	EqualSizeStratifier
)

// Options configures an OASIS sampler (Algorithm 3's inputs).
type Options struct {
	// Alpha is the F-measure weight: 1 estimates precision and 0.5 (or the
	// zero value, the default) the balanced F-measure. To estimate recall
	// (α = 0) set Recall instead, since 0 is the "unset" value.
	Alpha float64
	// Recall requests α = 0 (recall estimation), overriding Alpha.
	Recall bool
	// Epsilon is the ε-greedy exploration rate in (0, 1]; default 1e-3
	// (the paper's setting).
	Epsilon float64
	// Strata is the target number of strata K; default 30 (the paper finds
	// 30–60 works well across datasets).
	Strata int
	// StrataBins is the histogram resolution for the CSF rule; 0 picks a
	// sensible default.
	StrataBins int
	// Stratifier selects the stratification rule; default CSF.
	Stratifier StratifierKind
	// PriorStrength is η, the pseudo-count weight of the score-based Beta
	// prior; 0 means the paper's default 2K.
	PriorStrength float64
	// NoPriorDecay disables the Remark 4 modification (prior influence
	// decaying as labels accumulate). Decay is on by default; disabling it
	// reproduces the paper's bare Algorithm 3.
	NoPriorDecay bool
	// PosteriorEstimate reports the stratified posterior plug-in estimate
	// instead of the importance-weighted AIS ratio of Eqn. (3).
	PosteriorEstimate bool
	// Seed drives all sampling randomness.
	Seed uint64
}

// WithDefaults resolves the zero-value conventions: Recall forces α = 0,
// an unset Alpha becomes the balanced 0.5, an unset Strata becomes 30. It
// is what NewSampler and the baseline constructors apply; external layers
// (e.g. the session subsystem) use it to interpret Options identically.
func (o Options) WithDefaults() Options {
	if o.Recall {
		o.Alpha = 0
	} else if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Strata <= 0 {
		o.Strata = 30
	}
	return o
}

// OracleFunc returns the (possibly noisy) true label of pool pair i. It is
// the caller's interface to the labelling resource — a crowd, an expert, or
// ground truth in experiments.
type OracleFunc func(i int) bool

// Label implements the internal oracle interface.
func (f OracleFunc) Label(i int) bool { return f(i) }

// Result summarises a sampling run.
type Result struct {
	// FMeasure is the final estimate F̂_α.
	FMeasure float64
	// LabelsConsumed is the number of distinct pairs labelled.
	LabelsConsumed int
	// Iterations is the number of sampling steps taken (≥ LabelsConsumed;
	// sampling is with replacement and cached labels are free).
	Iterations int
}

// Sampler is the OASIS adaptive importance sampler over a pool.
//
// A Sampler can be driven two ways: synchronously, with Run/Step pulling
// labels from an OracleFunc, or asynchronously, with ProposeBatch/CommitLabel
// pushing labels in as an external labelling resource (a crowd, a service
// queue) produces them. A Sampler is not safe for concurrent use; the
// session subsystem (internal/session, served by cmd/oasis-server) adds
// locking, leases and persistence on top.
type Sampler struct {
	inner *core.Sampler
	str   *strata.Strata
	// proto is the shared initial slot state of the stratification this
	// sampler was built over (nil for legacy construction paths); see
	// resetAvailability.
	proto *samplerProto

	// Propose/commit bookkeeping: outstanding proposals live in a dense slab
	// (pendingSlab) indexed per pair by pendingIdx, holding every draw
	// awaiting that pair's label (with-replacement re-draws of an
	// outstanding pair queue additional weighted terms). The slab keeps the
	// propose/commit hot path free of map operations: insert is an append,
	// removal a swap-remove, both O(1). labels caches committed labels,
	// mirroring the Budgeted oracle's first-query cache.
	pendingSlab []pendingEntry
	// slots interleaves each pair with its proposal state, laid out in
	// stratum order (stratum k occupies [slotOff[k], slotOff[k+1]), matching
	// the core sampler's within-stratum item order). A uniform pair draw
	// indexes slots once: pair identity and state share an 8-byte load, so
	// the hot path takes a single random memory access instead of two
	// dependent ones. posOfPair maps a pool index back to its slot for the
	// (colder) commit/release paths.
	slots     []pairSlot
	slotOff   []int32
	posOfPair []int32
	// extraDraws holds the re-draws of outstanding pairs (rare): keeping
	// them out of the slab makes slab entries pointer-free scalars, so the
	// propose hot path never takes a GC write barrier.
	extraDraws map[int][]core.Draw
	labels     map[int]bool

	// Proposability accounting for the rejection-free draw path. Everything
	// here is a pure function of (labels, pending), so a sampler restored
	// from a snapshot rebuilds byte-identical state and continues the exact
	// same proposal sequence as the live sampler it was taken from.
	availCount []int32 // per stratum: pairs neither labelled nor outstanding
	availTotal int     // Σ availCount

	// Availability-masked stratum sampler for the near-exhaustion direct
	// mode: v(t) restricted to strata that still hold a proposable pair
	// (maskCum.Sum() is the retained mass Σ_avail v). Rebuilt lazily when
	// the core's instrumental epoch moves or the availability sets change.
	maskCum   *rng.Cumulative
	maskBuf   []float64
	maskEpoch uint64
	maskDirty bool

	// Mask-rebuild accounting for tracing, mirroring the core sampler's
	// (see core.Sampler.RebuildStats): count and nanoseconds of actual
	// availability-mask rebuilds. The fresh-path check stays free.
	maskRebuilds     uint64
	maskRebuildNanos int64
}

// pendingEntry is one outstanding proposal: the pair, its stratum, and the
// importance weight frozen when it was drawn. Re-draws of the pair while its
// label is in flight are queued separately in Sampler.extraDraws. The entry
// is a compact pointer-free scalar so slab operations stay allocation- and
// write-barrier-free.
type pendingEntry struct {
	pair    int32
	stratum int32
	weight  float64
}

// draw reconstructs the core draw record the entry froze.
func (e pendingEntry) draw() core.Draw {
	return core.Draw{Pair: int(e.pair), Stratum: int(e.stratum), Weight: e.weight}
}

// pairSlot is one pool pair in stratum order with its proposal state: ≥ 0
// is the slab index of the pair's outstanding proposal, pairAvailable means
// proposable, pairLabelled means committed.
type pairSlot struct {
	pair  int32
	state int32
}

// Sentinel values of pairSlot.state for pairs with no outstanding proposal.
const (
	pairAvailable int32 = -1
	pairLabelled  int32 = -2
)

// Stratification is a precomputed, immutable stratification of a pool,
// produced by Stratify. It is a pure function of the pool's columns and the
// strata-shaping options, so it can be cached and shared: every sampler
// built over the same (pool, options) via NewSamplerStratified reuses it
// instead of re-running the O(N log N) stratify. Treat it as read-only.
type Stratification struct {
	s *strata.Strata

	protoOnce sync.Once
	proto     samplerProto
}

// samplerProto is the shareable initial state of every sampler built over
// one stratification: the core's flattened membership plus the
// propose/commit slot template and the pair→slot map — all pure functions
// of the Strata, read-only once built. With it, a warm sampler build is one
// sequential slot-template copy instead of three O(N) scattered fills.
type samplerProto struct {
	fm        core.FlatMembers
	slots     []pairSlot // template: every pair available
	posOfPair []int32
}

// sharedProto builds (once) and returns the stratification's sampler
// prototype.
func (st *Stratification) sharedProto() *samplerProto {
	st.protoOnce.Do(func() {
		fm := core.Flatten(st.s)
		slots := make([]pairSlot, len(fm.Members))
		pos := make([]int32, len(fm.Members))
		for i, pair := range fm.Members {
			slots[i] = pairSlot{pair: pair, state: pairAvailable}
			pos[pair] = int32(i)
		}
		st.proto = samplerProto{fm: fm, slots: slots, posOfPair: pos}
	})
	return &st.proto
}

// K returns the number of strata actually built (may be fewer than the
// requested Options.Strata; see NewSampler).
func (st *Stratification) K() int { return st.s.K() }

// MemBytes estimates the stratification's resident size, for cache
// accounting.
func (st *Stratification) MemBytes() int64 {
	// Items (one int per pool item plus a header per stratum), Assign (one
	// int per item), four float64 columns per stratum, and the sampler
	// prototype (flat members, slot template, pair→slot map: 16 bytes/item).
	return int64(st.s.N())*32 + int64(st.s.K())*60
}

// Stratify computes the stratification NewSampler builds internally for
// (p, opts): CSF or equal-size per opts.Stratifier with the same option
// defaulting, validating the pool on the way.
func Stratify(p *Pool, opts Options) (*Stratification, error) {
	opts = opts.WithDefaults()
	var (
		s   *strata.Strata
		err error
	)
	switch opts.Stratifier {
	case EqualSizeStratifier:
		s, err = strata.EqualSize(p.inner, opts.Strata)
	default:
		s, err = strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	}
	if err != nil {
		return nil, err
	}
	return &Stratification{s: s}, nil
}

// NewSampler stratifies the pool and initialises OASIS from its scores
// (Algorithms 1 and 2), returning a ready-to-run sampler.
func NewSampler(p *Pool, opts Options) (*Sampler, error) {
	st, err := Stratify(p, opts)
	if err != nil {
		return nil, err
	}
	return NewSamplerStratified(p, opts, st)
}

// NewSamplerStratified is NewSampler over a precomputed stratification: the
// O(N log N) stratify is skipped, and so is the O(N) validation re-scan (the
// stratification's own construction validated the pool). st must come from
// Stratify over this same pool with these same strata options — a mismatched
// stratification silently corrupts every estimate. The sampler produced is
// bit-identical to what NewSampler would build: the stratification is
// deterministic, and all randomness seeds from opts.Seed afterwards.
func NewSamplerStratified(p *Pool, opts Options, st *Stratification) (*Sampler, error) {
	opts = opts.WithDefaults()
	proto := st.sharedProto()
	inner, err := core.NewWithMembers(p.inner, st.s, core.Config{
		Alpha:             opts.Alpha,
		Epsilon:           opts.Epsilon,
		PriorStrength:     opts.PriorStrength,
		DisablePriorDecay: opts.NoPriorDecay,
		PosteriorEstimate: opts.PosteriorEstimate,
		// The pool was validated when st was stratified (or, for store-resolved
		// pools, when the columns were loaded and CRC/SHA-verified).
		TrustedPool: true,
	}, rng.New(opts.Seed), proto.fm)
	if err != nil {
		return nil, err
	}
	out := &Sampler{
		inner:  inner,
		str:    st.s,
		proto:  proto,
		labels: make(map[int]bool),
	}
	out.resetAvailability()
	return out, nil
}

// resetAvailability rebuilds the proposability accounting from the labels
// cache, with no outstanding proposals: every unlabelled pair is available.
func (s *Sampler) resetAvailability() {
	n := s.str.N()
	fresh := false // slots just built with every state already pairAvailable
	if s.slots == nil {
		s.availCount = make([]int32, s.str.K())
		if s.proto != nil {
			// Warm path: one sequential copy of the shared slot template;
			// slotOff and posOfPair are read-only after init, so they alias
			// the prototype outright.
			s.slots = make([]pairSlot, n)
			copy(s.slots, s.proto.slots)
			s.slotOff = s.proto.fm.Off
			s.posOfPair = s.proto.posOfPair
			fresh = true
		} else {
			s.slots = make([]pairSlot, n)
			s.slotOff = make([]int32, s.str.K()+1)
			s.posOfPair = make([]int32, n)
			pos := 0
			for k, items := range s.str.Items {
				s.slotOff[k] = int32(pos)
				for _, pair := range items {
					s.slots[pos] = pairSlot{pair: int32(pair), state: pairAvailable}
					s.posOfPair[pair] = int32(pos)
					pos++
				}
			}
			s.slotOff[s.str.K()] = int32(pos)
			fresh = true
		}
	}
	if !fresh {
		for i := range s.slots {
			s.slots[i].state = pairAvailable
		}
	}
	s.pendingSlab = s.pendingSlab[:0]
	s.extraDraws = nil
	for k := range s.availCount {
		s.availCount[k] = int32(len(s.str.Items[k]))
	}
	s.availTotal = n
	for pair := range s.labels {
		s.slots[s.posOfPair[pair]].state = pairLabelled
		s.availCount[s.str.Assign[pair]]--
		s.availTotal--
	}
	s.maskDirty = true
}

// pairState returns the proposal state of pair, or pairAvailable for an
// out-of-range index (defensive: callers pass client-supplied pair ids).
func (s *Sampler) pairState(pair int) int32 {
	if pair < 0 || pair >= len(s.posOfPair) {
		return pairAvailable
	}
	return s.slots[s.posOfPair[pair]].state
}

// removePending swap-removes pair's slab entry, returning it together with
// any queued re-draws. The caller must know the pair is outstanding.
func (s *Sampler) removePending(pair int) (pendingEntry, []core.Draw) {
	idx := s.slots[s.posOfPair[pair]].state
	entry := s.pendingSlab[idx]
	last := len(s.pendingSlab) - 1
	if int(idx) != last {
		moved := s.pendingSlab[last]
		s.pendingSlab[idx] = moved
		s.slots[s.posOfPair[moved.pair]].state = idx
	}
	s.pendingSlab = s.pendingSlab[:last]
	s.slots[s.posOfPair[pair]].state = pairAvailable
	var extra []core.Draw
	if len(s.extraDraws) > 0 {
		if ex, ok := s.extraDraws[pair]; ok {
			extra = ex
			delete(s.extraDraws, pair)
		}
	}
	return entry, extra
}

// K returns the realised number of strata (≤ Options.Strata).
func (s *Sampler) K() int { return s.inner.K() }

// InitialEstimate returns the score-based initial F̂(0) of Algorithm 2.
func (s *Sampler) InitialEstimate() float64 { return s.inner.InitialF() }

// Estimate returns the current F-measure estimate.
func (s *Sampler) Estimate() float64 { return s.inner.Estimate() }

// Health summarises the estimator's statistical health for monitoring:
// the current estimate, the delta-method asymptotic variance σ̂² (so that
// Var(F̂) ≈ σ̂²/Terms), the effective sample size of the importance
// weights, and ESS/Terms. An ESSRatio collapsing toward zero signals
// weight degeneracy — the estimate's nominal sample count overstates the
// information actually collected.
type Health struct {
	Estimate           float64
	AsymptoticVariance float64
	ESS                float64
	ESSRatio           float64
	Terms              int
}

// Health reports the sampler's current estimator health.
func (s *Sampler) Health() Health {
	est := s.inner.Estimator()
	return Health{
		Estimate:           s.inner.Estimate(),
		AsymptoticVariance: est.AsymptoticVariance(),
		ESS:                est.ESS(),
		ESSRatio:           est.ESSRatio(),
		Terms:              est.N(),
	}
}

// StratumDiagnostics reports the per-stratum convergence diagnostics: for
// every stratum, how many labelled draws landed there, the Σw/Σw² weight
// moments and local ESS those draws contributed, and the realised draw
// share against the cached instrumental allocation v(t) (Skew = 1 when
// sampling matches the current adaptive optimum). Like every other sampler
// method it must be serialised with draws and commits by the caller.
func (s *Sampler) StratumDiagnostics() []diag.StratumHealth {
	draws, sumW, sumW2 := s.inner.StratumStats(nil, nil, nil)
	instr := append([]float64(nil), s.inner.InstrumentalCached()...)
	return diag.StrataHealth(draws, sumW, sumW2, instr)
}

// Run performs adaptive sampling until `budget` distinct pairs have been
// labelled by the oracle (or the pool is exhausted), and returns the final
// estimate. Run may be called repeatedly to continue with a fresh budget;
// labels already purchased are remembered across calls only within a single
// Run's cache, matching the paper's accounting.
func (s *Sampler) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(s.inner, o, budget)
}

// Step performs a single iteration of Algorithm 3 against a budgeted oracle.
// Most callers should use Run; Step exists for callers integrating OASIS
// into their own labelling loops.
func (s *Sampler) Step(b *Budgeted) error { return s.inner.Step(b.inner) }

// ErrNotProposed is returned by CommitLabel for a pair that has no
// outstanding proposal and no cached label — e.g. a proposal whose lease was
// released before the label arrived.
var ErrNotProposed = errors.New("oasis: pair was not proposed (or its proposal was released)")

// ErrExhausted is returned by ProposeBatch when the proposable supply runs
// out before the batch is full: every pair in the pool is either labelled or
// outstanding. The partial batch drawn so far is returned alongside the
// error. Once outstanding proposals are committed or released the supply can
// recover; when the whole pool is labelled it is terminal.
var ErrExhausted = errors.New("oasis: no proposable pairs (pool labelled or fully outstanding)")

// proposeStormLimit bounds the consecutive with-replacement draws that fail
// to yield a fresh proposal (free commits of already-labelled pairs, queued
// re-draws of outstanding ones) before ProposeBatch escalates to the direct
// mode, which draws the next proposal from the availability-masked
// instrumental distribution in bounded time. At typical labelled densities
// the limit is effectively never reached (probability density^32), so the
// faithful with-replacement semantics of Algorithm 3 govern the common path.
const proposeStormLimit = 32

// ProposeBatch draws n distinct unlabelled pairs from the current
// instrumental distribution and returns their pool indices, marking each as
// an outstanding proposal. It is the asynchronous, batched counterpart of
// Step: the caller routes the proposed pairs to its labelling resource and
// feeds answers back through CommitLabel in any order.
//
// Sampling is with replacement, exactly as in Algorithm 3: a re-draw of an
// already-committed pair is folded into the estimate immediately with its
// cached label (a "free" draw in the paper's budget accounting), and a
// re-draw of a still-outstanding pair queues an additional weighted term
// that is applied when that pair's label arrives. Each draw's importance
// weight is frozen at draw time, so batching leaves the estimator unchanged;
// only the adaptation happens in batch steps rather than per label.
//
// The draw path is rejection-free and amortized O(1) per draw: the
// instrumental distribution is cached between commits, every draw resolves
// against O(1) availability state, and when labelled/outstanding pairs
// dominate the drawn strata (proposeStormLimit consecutive non-proposal
// draws) the remaining proposals are drawn directly from the instrumental
// distribution restricted to proposable pairs, with importance weights
// corrected for the restriction.
//
// The batch has exactly n pairs while the proposable supply lasts. When the
// supply runs out mid-batch, ProposeBatch returns the partial batch (which
// may be empty) together with ErrExhausted — it never spins on a draw cap.
// Proposals return to the supply via Release; labels shrink it permanently.
func (s *Sampler) ProposeBatch(n int) ([]int, error) {
	if n <= 0 {
		return nil, errors.New("oasis: batch size must be positive")
	}
	// A batch can never exceed the proposable supply (Release is the only
	// thing that grows it, and it cannot run mid-batch), so cap the
	// allocation: a client asking for 2^31 pairs must not allocate 16 GiB.
	capHint := n
	if capHint > s.availTotal {
		capHint = s.availTotal
	}
	batch := make([]int, 0, capHint)
	misses := 0
	r := s.inner.Rand()
	for len(batch) < n {
		if s.availTotal == 0 {
			return batch, ErrExhausted
		}
		if misses >= proposeStormLimit {
			// Direct mode: stratum ~ v(t) masked to strata with proposable
			// pairs, pair uniform among the stratum's proposable pairs. The
			// importance weight is the true inverse sampling probability of
			// the restricted draw: ω'_k/v'_k with v'_k = v_k/Σ_avail v and
			// ω'_k = A_k/N the restricted stratum mass.
			s.refreshMask()
			k := s.maskCum.Draw(s.inner.Rand())
			avail := float64(s.availCount[k])
			weight := s.maskCum.Sum() * avail / (float64(s.str.N()) * s.inner.InstrumentalCached()[k])
			pos := s.pickAvailable(k)
			s.propose(pos, k, weight)
			batch = append(batch, int(s.slots[pos].pair))
			misses = 0
			continue
		}
		// One draw of the sequential algorithm: stratum ~ v(t) (cached),
		// pair uniform within the stratum. The slot read resolves pair
		// identity and proposal state with a single random memory access.
		k, weight := s.inner.DrawStratum()
		off := s.slotOff[k]
		pos := int(off) + r.Intn(int(s.slotOff[k+1]-off))
		slot := s.slots[pos]
		pair := int(slot.pair)
		switch st := slot.state; {
		case st == pairAvailable:
			s.propose(pos, k, weight)
			batch = append(batch, pair)
			misses = 0
		case st == pairLabelled:
			// Free draw: fold the cached label in immediately, exactly as
			// the sequential algorithm re-labels for free (Algorithm 3 with
			// the Budgeted oracle's cache).
			s.inner.Commit(core.Draw{Pair: pair, Stratum: k, Weight: weight}, s.labels[pair])
			misses++
		default:
			if s.extraDraws == nil {
				s.extraDraws = make(map[int][]core.Draw)
			}
			s.extraDraws[pair] = append(s.extraDraws[pair], core.Draw{Pair: pair, Stratum: k, Weight: weight})
			misses++
		}
	}
	return batch, nil
}

// propose marks the pair at slot pos (in stratum k) outstanding with its
// frozen draw weight. Both proposal paths — the with-replacement draw and
// the direct availability-masked mode — share this bookkeeping.
func (s *Sampler) propose(pos, k int, weight float64) {
	s.pendingSlab = append(s.pendingSlab, pendingEntry{
		pair:    s.slots[pos].pair,
		stratum: int32(k),
		weight:  weight,
	})
	s.slots[pos].state = int32(len(s.pendingSlab) - 1)
	s.availCount[k]--
	s.availTotal--
	s.maskDirty = true
}

// refreshMask rebuilds the availability-masked stratum sampler when the
// instrumental distribution or the availability sets changed. Requires
// availTotal > 0.
func (s *Sampler) refreshMask() {
	if !s.maskDirty && s.maskEpoch == s.inner.Epoch() && s.maskCum != nil {
		return
	}
	start := time.Now()
	_, innerBefore := s.inner.RebuildStats()
	v := s.inner.InstrumentalCached()
	if s.maskBuf == nil {
		s.maskBuf = make([]float64, len(v))
	}
	for k, vk := range v {
		if s.availCount[k] > 0 {
			s.maskBuf[k] = vk
		} else {
			s.maskBuf[k] = 0
		}
	}
	if s.maskCum == nil {
		s.maskCum = &rng.Cumulative{}
	}
	// v is strictly positive and at least one stratum is unmasked, so the
	// masked weights always carry positive mass.
	if err := s.maskCum.Reset(s.maskBuf); err != nil {
		panic("oasis: availability mask lost all mass: " + err.Error())
	}
	s.maskEpoch = s.inner.Epoch()
	s.maskDirty = false
	s.maskRebuilds++
	// A mask rebuild may itself trigger the inner v(t) rebuild through
	// InstrumentalCached; subtract that delta so RebuildStats' sum never
	// double-counts it.
	_, innerAfter := s.inner.RebuildStats()
	s.maskRebuildNanos += time.Since(start).Nanoseconds() - (innerAfter - innerBefore)
}

// RebuildStats reports the sampler's dirty-flag cache rebuilds — the core
// instrumental distribution v(t) plus the availability mask over it — as a
// cumulative count and total nanoseconds. The session layer reads deltas
// across one propose/commit call and records them as a sampler.rebuild
// span. Callers serialise as with every other sampler method.
func (s *Sampler) RebuildStats() (count uint64, nanos int64) {
	c, n := s.inner.RebuildStats()
	return c + s.maskRebuilds, n + s.maskRebuildNanos
}

// pickAvailable returns the slot position of a uniform draw from the
// proposable pairs of stratum k, which must have at least one. It first
// rejection-samples over the stratum's slots (O(1) status checks); if the
// proposable density is too low for that to land quickly, it falls back to
// counting off a uniform rank in slot order — deterministic, bounded by the
// stratum size.
func (s *Sampler) pickAvailable(k int) int {
	off := int(s.slotOff[k])
	slots := s.slots[off:s.slotOff[k+1]]
	r := s.inner.Rand()
	avail := int(s.availCount[k])
	if avail*4 >= len(slots) {
		for tries := 0; tries < 16; tries++ {
			i := r.Intn(len(slots))
			if slots[i].state == pairAvailable {
				return off + i
			}
		}
	}
	j := r.Intn(avail)
	for i, slot := range slots {
		if slot.state == pairAvailable {
			if j == 0 {
				return off + i
			}
			j--
		}
	}
	panic("oasis: availability accounting out of sync with proposal state")
}

// CommitLabel applies the label of a previously proposed pair, updating the
// Beta posterior and the running estimate once per draw that was awaiting
// it. Committing an already-committed pair is a no-op (the first label
// wins, mirroring the Budgeted oracle's cache); committing a pair that was
// never proposed — or whose proposal was released — returns ErrNotProposed.
func (s *Sampler) CommitLabel(pair int, label bool) error {
	_, err := s.commitLabel(pair, label, false)
	return err
}

// DrawTerm is one weighted estimator term applied when a pair's label is
// committed: the stratum the draw came from and the importance weight frozen
// at draw time. The durable journal (internal/wal) records every commit's
// terms so recovery can re-apply a commit even after its proposal was folded
// into a compaction snapshot.
type DrawTerm struct {
	Stratum int     `json:"k"`
	Weight  float64 `json:"w"`
}

// CommitLabelTerms is CommitLabel, additionally returning the weighted terms
// folded into the estimator: the frozen draw that proposed the pair plus any
// re-draws queued while the label was in flight, in application order. A
// duplicate commit returns (nil, nil).
func (s *Sampler) CommitLabelTerms(pair int, label bool) ([]DrawTerm, error) {
	return s.commitLabel(pair, label, true)
}

// commitLabel is the shared commit path; terms are only materialised when
// the caller journals them, keeping the journal-less hot path allocation
// free.
func (s *Sampler) commitLabel(pair int, label bool, wantTerms bool) ([]DrawTerm, error) {
	if _, done := s.labels[pair]; done {
		return nil, nil
	}
	if s.pairState(pair) < 0 {
		return nil, ErrNotProposed
	}
	entry, extra := s.removePending(pair)
	s.labels[pair] = label
	s.slots[s.posOfPair[pair]].state = pairLabelled // was pending: availability unchanged
	s.inner.Commit(entry.draw(), label)
	for _, d := range extra {
		s.inner.Commit(d, label)
	}
	if !wantTerms {
		return nil, nil
	}
	terms := make([]DrawTerm, 0, 1+len(extra))
	terms = append(terms, DrawTerm{Stratum: int(entry.stratum), Weight: entry.weight})
	for _, d := range extra {
		terms = append(terms, DrawTerm{Stratum: d.Stratum, Weight: d.Weight})
	}
	return terms, nil
}

// ReplayCommit applies one journaled commit during write-ahead-log recovery.
// When the pair has an outstanding proposal (its propose event was replayed
// through ProposeBatch) it behaves exactly as CommitLabelTerms and verifies
// the replayed draws match the journaled terms; when the proposal was folded
// into a compaction snapshot — the pair is merely available — the journaled
// terms are applied directly, reproducing the live commit bit-for-bit.
// Already-labelled pairs are idempotent no-ops.
func (s *Sampler) ReplayCommit(pair int, label bool, terms []DrawTerm) error {
	if pair < 0 || pair >= s.str.N() {
		return fmt.Errorf("oasis: replay commit for pair %d outside pool of %d", pair, s.str.N())
	}
	if _, done := s.labels[pair]; done {
		return nil
	}
	if len(terms) == 0 {
		return fmt.Errorf("oasis: replay commit for pair %d carries no draw terms", pair)
	}
	for _, dt := range terms {
		if dt.Stratum < 0 || dt.Stratum >= s.K() || !(dt.Weight > 0) || math.IsInf(dt.Weight, 0) {
			return fmt.Errorf("oasis: replay commit for pair %d has invalid term %+v", pair, dt)
		}
	}
	if s.pairState(pair) >= 0 {
		got, err := s.commitLabel(pair, label, true)
		if err != nil {
			return err
		}
		if len(got) != len(terms) {
			return fmt.Errorf("oasis: replay commit for pair %d applied %d terms, journal has %d", pair, len(got), len(terms))
		}
		for i := range got {
			if got[i] != terms[i] {
				return fmt.Errorf("oasis: replayed draw for pair %d diverged: %+v vs journalled %+v", pair, got[i], terms[i])
			}
		}
		return nil
	}
	// The proposal predates the snapshot this sampler was restored from, so
	// its pending entry is gone; the journaled terms carry the frozen weights.
	for _, dt := range terms {
		s.inner.Commit(core.Draw{Pair: pair, Stratum: dt.Stratum, Weight: dt.Weight}, label)
	}
	s.labels[pair] = label
	s.slots[s.posOfPair[pair]].state = pairLabelled
	s.availCount[s.str.Assign[pair]]--
	s.availTotal--
	s.maskDirty = true
	return nil
}

// Release drops the outstanding proposal for a pair without committing a
// label, returning whether the pair was outstanding. The pair becomes
// proposable again; its queued draws are discarded, which does not bias the
// estimator (discarding draws independently of their labels preserves
// consistency). The session layer calls this when a proposal's lease
// expires.
func (s *Sampler) Release(pair int) bool {
	if s.pairState(pair) < 0 {
		return false
	}
	s.removePending(pair) // leaves the pair marked available
	s.availCount[s.str.Assign[pair]]++
	s.availTotal++
	s.maskDirty = true
	return true
}

// Pending returns the pool indices of outstanding proposals (in no
// particular order).
func (s *Sampler) Pending() []int {
	out := make([]int, len(s.pendingSlab))
	for i, e := range s.pendingSlab {
		out[i] = int(e.pair)
	}
	return out
}

// LabelsCommitted returns the number of distinct pairs committed through
// CommitLabel — the propose/commit analogue of Result.LabelsConsumed.
func (s *Sampler) LabelsCommitted() int { return len(s.labels) }

// CommittedLabels returns a copy of the committed pair→label cache, e.g.
// for snapshotting.
func (s *Sampler) CommittedLabels() map[int]bool {
	out := make(map[int]bool, len(s.labels))
	for i, l := range s.labels {
		out[i] = l
	}
	return out
}

// PendingDraw is one outstanding proposal in a SamplerState: the pair, the
// frozen draw that proposed it, and any re-draws queued while its label was
// in flight.
type PendingDraw struct {
	Pair    int        `json:"pair"`
	Stratum int        `json:"k"`
	Weight  float64    `json:"w"`
	Extra   []DrawTerm `json:"extra,omitempty"`
}

// SamplerState is a JSON-serialisable snapshot of a Sampler's complete
// mutable state: Beta posteriors, estimator sums, the random stream, the
// committed label cache, and the outstanding proposals with their frozen
// draw weights. Persisting the proposals is what makes the snapshot exact:
// a restored sampler continues the precise draw sequence of the live one —
// including re-draws of in-flight pairs — which the WAL's compaction relies
// on (tail events replay against the snapshot bit-for-bit). Restore a state
// only onto a Sampler built from the same pool with the same Options.
type SamplerState struct {
	Core    *core.State   `json:"core"`
	Labels  map[int]bool  `json:"labels,omitempty"`
	Pending []PendingDraw `json:"pending,omitempty"`
}

// State captures the sampler's mutable state for persistence.
func (s *Sampler) State() *SamplerState {
	st := &SamplerState{Core: s.inner.State(), Labels: s.CommittedLabels()}
	for _, e := range s.pendingSlab {
		pd := PendingDraw{Pair: int(e.pair), Stratum: int(e.stratum), Weight: e.weight}
		for _, d := range s.extraDraws[int(e.pair)] {
			pd.Extra = append(pd.Extra, DrawTerm{Stratum: d.Stratum, Weight: d.Weight})
		}
		st.Pending = append(st.Pending, pd)
	}
	return st
}

// RestoreState overwrites the sampler's mutable state from a snapshot taken
// on a sampler with the same pool and Options, including its outstanding
// proposals. The caller decides what to do with the restored proposals:
// the session layer re-leases them (graceful snapshot restarts) or releases
// them after WAL tail replay (the boot barrier's crash contract).
func (s *Sampler) RestoreState(st *SamplerState) error {
	if st == nil || st.Core == nil {
		return errors.New("oasis: nil sampler state")
	}
	for pair := range st.Labels {
		if pair < 0 || pair >= s.str.N() {
			return fmt.Errorf("oasis: snapshot label for pair %d outside pool of %d", pair, s.str.N())
		}
	}
	seen := make(map[int]bool, len(st.Pending))
	for _, p := range st.Pending {
		if p.Pair < 0 || p.Pair >= s.str.N() {
			return fmt.Errorf("oasis: snapshot proposal for pair %d outside pool of %d", p.Pair, s.str.N())
		}
		if _, labelled := st.Labels[p.Pair]; labelled || seen[p.Pair] {
			return fmt.Errorf("oasis: snapshot proposal for pair %d clashes with its label state", p.Pair)
		}
		seen[p.Pair] = true
		if p.Stratum != s.str.Assign[p.Pair] || !(p.Weight > 0) || math.IsInf(p.Weight, 0) {
			return fmt.Errorf("oasis: snapshot proposal for pair %d has invalid draw {k:%d w:%v}", p.Pair, p.Stratum, p.Weight)
		}
		for _, e := range p.Extra {
			if e.Stratum != s.str.Assign[p.Pair] || !(e.Weight > 0) || math.IsInf(e.Weight, 0) {
				return fmt.Errorf("oasis: snapshot proposal for pair %d has invalid re-draw %+v", p.Pair, e)
			}
		}
	}
	if err := s.inner.Restore(st.Core); err != nil {
		return err
	}
	s.labels = make(map[int]bool, len(st.Labels))
	for i, l := range st.Labels {
		s.labels[i] = l
	}
	// Rebuild the proposability accounting and invalidate the masked
	// sampler; the core restore already invalidated the cached v(t). All of
	// it is derived from (labels, pending), so the restored sampler proposes
	// exactly what the snapshotted one would have.
	s.resetAvailability()
	for _, p := range st.Pending {
		s.propose(int(s.posOfPair[p.Pair]), p.Stratum, p.Weight)
		for _, e := range p.Extra {
			if s.extraDraws == nil {
				s.extraDraws = make(map[int][]core.Draw)
			}
			s.extraDraws[p.Pair] = append(s.extraDraws[p.Pair], core.Draw{Pair: p.Pair, Stratum: e.Stratum, Weight: e.Weight})
		}
	}
	return nil
}

// Budgeted wraps an OracleFunc with label caching and budget accounting.
type Budgeted struct {
	inner *oracle.Budgeted
}

// NewBudgeted wraps o with a budget; non-positive budget means unlimited.
func NewBudgeted(o OracleFunc, budget int) *Budgeted {
	return &Budgeted{inner: oracle.NewBudgeted(o, budget)}
}

// Consumed returns the number of distinct pairs labelled.
func (b *Budgeted) Consumed() int { return b.inner.Consumed() }

// Exhausted reports whether the budget has been used up.
func (b *Budgeted) Exhausted() bool { return b.inner.Exhausted() }

// ErrBudgetExhausted is returned by Step when a fresh label would exceed the
// budget.
var ErrBudgetExhausted = oracle.ErrBudgetExhausted

// Method is a generic sequential evaluation method (OASIS or a baseline).
type Method struct {
	inner sampler.Method
}

// Name returns the method's display name.
func (m *Method) Name() string { return m.inner.Name() }

// Estimate returns the method's current F̂.
func (m *Method) Estimate() float64 { return m.inner.Estimate() }

// Run drives the method until the label budget is consumed.
func (m *Method) Run(o OracleFunc, budget int) (*Result, error) {
	return runLoop(m.inner, o, budget)
}

// Sampling is with replacement and cached (already-labelled) pairs are free,
// so a run can legitimately take more draws than its label budget — e.g.
// once a heavy stratum is fully labelled, every re-draw from it consumes no
// budget. The cap below bounds the draw count so a degenerate instrumental
// distribution (all mass on labelled pairs) terminates instead of spinning:
// MaxDrawFactor draws per budgeted label, plus MaxDrawSlack to keep tiny
// budgets from being cut off early. Used by runLoop only: the batched
// proposers (Sampler.ProposeBatch and the session layer's passive proposer)
// no longer need a cap — their draw paths are rejection-free and exhaustion
// is a typed error (ErrExhausted).
const (
	// MaxDrawFactor bounds with-replacement draws per budgeted label.
	MaxDrawFactor = 200
	// MaxDrawSlack is the additive slack for small budgets.
	MaxDrawSlack = 1000
)

// MaxDraws returns the draw cap for a run (or proposal batch) targeting n
// fresh labels: MaxDrawFactor*n + MaxDrawSlack.
func MaxDraws(n int) int { return MaxDrawFactor*n + MaxDrawSlack }

// runLoop drives any method until the budget is consumed, with a safety cap
// on iterations (with-replacement draws of cached pairs are free, so a
// method can legitimately take more iterations than budget).
func runLoop(m sampler.Method, o OracleFunc, budget int) (*Result, error) {
	if budget <= 0 {
		return nil, errors.New("oasis: budget must be positive")
	}
	b := oracle.NewBudgeted(o, budget)
	iters := 0
	maxIters := MaxDraws(budget)
	for b.Consumed() < budget && iters < maxIters {
		err := m.Step(b)
		if err == oracle.ErrBudgetExhausted {
			break
		}
		if err != nil {
			return nil, err
		}
		iters++
	}
	return &Result{
		FMeasure:       m.Estimate(),
		LabelsConsumed: b.Consumed(),
		Iterations:     iters,
	}, nil
}

// NewPassiveSampler returns the passive (uniform) baseline method.
func NewPassiveSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	return &Method{inner: sampler.NewPassive(p.inner, opts.Alpha, rng.New(opts.Seed))}, nil
}

// NewStratifiedSampler returns the proportional stratified baseline of
// Druck & McCallum as configured in the paper's §6.2 (CSF strata, K = 30 by
// default).
func NewStratifiedSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	s, err := strata.CSF(p.inner, opts.Strata, opts.StrataBins)
	if err != nil {
		return nil, err
	}
	m, err := sampler.NewStratified(p.inner, s.Weights, s.MeanPred, s.Items, opts.Alpha, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// NewISSampler returns the static importance-sampling baseline of Sawade et
// al.: a fixed instrumental distribution computed once from the scores.
func NewISSampler(p *Pool, opts Options) (*Method, error) {
	opts = opts.WithDefaults()
	m, err := sampler.NewIS(p.inner, sampler.ISConfig{
		Alpha:   opts.Alpha,
		Epsilon: opts.Epsilon,
	}, rng.New(opts.Seed))
	if err != nil {
		return nil, err
	}
	return &Method{inner: m}, nil
}

// AsMethod adapts the OASIS sampler to the generic Method type, e.g. for
// running OASIS and baselines through the same loop.
func (s *Sampler) AsMethod() *Method { return &Method{inner: s.inner} }
