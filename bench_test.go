package oasis_test

// This file regenerates every table and figure of the paper's evaluation
// (§6) as testing.B benchmarks, plus ablation benches for the design choices
// called out in DESIGN.md. Each benchmark prints the regenerated table to
// stdout on its first iteration and reports a headline metric.
//
// Scale is controlled by environment variables (see internal/paperexp):
//
//	OASIS_BENCH_SCALE  pool/budget multiplier (default 0.25; 1.0 = paper scale)
//	OASIS_BENCH_RUNS   repeats per error curve (default 20; paper uses 1000)
//	OASIS_BENCH_SEED   base seed (default 1)
//
// Run all of them with:  go test -bench=. -benchmem .

import (
	"io"
	"os"
	"testing"

	"oasis/internal/paperexp"
)

// benchOut returns stdout for the first benchmark iteration and io.Discard
// afterwards, so tables are printed exactly once regardless of b.N.
func benchOut(i int) io.Writer {
	if i == 0 {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkTable1Datasets(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Table1(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Pools(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Table2(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Runtime(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Table3(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Strata(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Figure1(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2LabelBudget regenerates the error-vs-budget curves of
// Figure 2 for each of the six pools as sub-benchmarks.
func BenchmarkFigure2LabelBudget(b *testing.B) {
	cfg := paperexp.FromEnv()
	for _, name := range []string{
		"Amazon-GoogleProducts", "restaurant", "DBLP-ACM",
		"Abt-Buy", "cora", "tweets100k",
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := paperexp.Figure2(benchOut(i), cfg, name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure3Calibration(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Figure3(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Convergence(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Figure4(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5Classifiers(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.Figure5(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeadlineSavings(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.HeadlineSavings(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEpsilon(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationEpsilon(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPriorStrength(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationPriorStrength(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPriorDecay(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationPriorDecay(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStratifier(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationStratifier(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPosteriorEstimate(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationPosteriorEstimate(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationISAlias(b *testing.B) {
	cfg := paperexp.FromEnv()
	for i := 0; i < b.N; i++ {
		if err := paperexp.AblationISAlias(benchOut(i), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
