// Package oasis implements OASIS — Optimal Asymptotic Sequential Importance
// Sampling — for label-efficient evaluation of entity-resolution (ER)
// systems, reproducing Marchant & Rubinstein, "In Search of an Entity
// Resolution OASIS", PVLDB 10(11), 2017.
//
// # Problem
//
// Evaluating an ER system means estimating the F-measure (or precision or
// recall) of its predicted matching over a pool of record pairs, using a
// costly labelling oracle (e.g. a crowd). Class imbalance in ER is extreme —
// often worse than 1:1000 — so uniform ("passive") sampling wastes almost
// every label on obvious non-matches. OASIS samples adaptively: it
// stratifies the pool by similarity score, maintains a Beta posterior over
// each stratum's match probability, and at every step draws from an
// ε-greedy approximation of the variance-minimising instrumental
// distribution, reweighting the estimate to remain statistically consistent.
//
// # Quick start
//
//	p, err := oasis.NewPool(scores, predictions, oasis.CalibratedScores)
//	sampler, err := oasis.NewSampler(p, oasis.Options{Alpha: 0.5, Strata: 30, Seed: 1})
//	res, err := sampler.Run(oracleFunc, 1000) // oracleFunc(i) returns the true label of pair i
//	fmt.Println(res.FMeasure)
//
// Baselines used in the paper's comparison (passive, proportional
// stratified, static importance sampling) are available through
// NewPassiveSampler, NewStratifiedSampler and NewISSampler, and the full
// experimental testbed — synthetic versions of the six benchmark datasets,
// the ER pipeline and classifiers, and the error-curve harness — lives in
// the erbench subpackage.
//
// # Asynchronous labelling and the evaluation service
//
// Run suits in-process oracles; real crowds answer asynchronously and in
// batches. ProposeBatch draws a batch of distinct unlabelled pairs from the
// current instrumental distribution without consuming labels, and
// CommitLabel folds answers back into the posterior and the estimate as
// they arrive, in any order — the estimator is unchanged because each
// draw's importance weight is frozen at draw time. The service layer builds
// on this: internal/session keeps many concurrent evaluations alive behind
// a lease-based propose/commit protocol with JSON snapshot/restore, and
// cmd/oasis-server exposes it over HTTP (see the repository README for the
// API walkthrough and examples/serverclient for a runnable end-to-end
// demo).
//
// Every randomised component is seeded explicitly; identical seeds give
// bit-identical runs.
package oasis
