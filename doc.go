// Package oasis implements OASIS — Optimal Asymptotic Sequential Importance
// Sampling — for label-efficient evaluation of entity-resolution (ER)
// systems, reproducing Marchant & Rubinstein, "In Search of an Entity
// Resolution OASIS", PVLDB 10(11), 2017.
//
// # Problem
//
// Evaluating an ER system means estimating the F-measure (or precision or
// recall) of its predicted matching over a pool of record pairs, using a
// costly labelling oracle (e.g. a crowd). Class imbalance in ER is extreme —
// often worse than 1:1000 — so uniform ("passive") sampling wastes almost
// every label on obvious non-matches. OASIS samples adaptively: it
// stratifies the pool by similarity score, maintains a Beta posterior over
// each stratum's match probability, and at every step draws from an
// ε-greedy approximation of the variance-minimising instrumental
// distribution, reweighting the estimate to remain statistically consistent.
//
// # Quick start
//
//	p, err := oasis.NewPool(scores, predictions, oasis.CalibratedScores)
//	sampler, err := oasis.NewSampler(p, oasis.Options{Alpha: 0.5, Strata: 30, Seed: 1})
//	res, err := sampler.Run(oracleFunc, 1000) // oracleFunc(i) returns the true label of pair i
//	fmt.Println(res.FMeasure)
//
// Baselines used in the paper's comparison (passive, proportional
// stratified, static importance sampling) are available through
// NewPassiveSampler, NewStratifiedSampler and NewISSampler, and the full
// experimental testbed — synthetic versions of the six benchmark datasets,
// the ER pipeline and classifiers, and the error-curve harness — lives in
// the erbench subpackage.
//
// # Asynchronous labelling and the evaluation service
//
// Run suits in-process oracles; real crowds answer asynchronously and in
// batches. ProposeBatch draws a batch of distinct unlabelled pairs from the
// current instrumental distribution without consuming labels, and
// CommitLabel folds answers back into the posterior and the estimate as
// they arrive, in any order — the estimator is unchanged because each
// draw's importance weight is frozen at draw time. The service layer builds
// on this: internal/session keeps many concurrent evaluations alive behind
// a lease-based propose/commit protocol with JSON snapshot/restore, and
// cmd/oasis-server exposes it over HTTP (see the repository README for the
// API walkthrough and examples/serverclient for a runnable end-to-end
// demo).
//
// Labels are durable. The session layer is a deterministic state machine —
// every draw comes from an explicitly seeded stream and the instrumental
// distribution is a pure function of the labels committed so far — so
// internal/wal journals the operation sequence (create, propose,
// label-commit with its frozen weight terms, release, delete) to a
// segmented, CRC-checked write-ahead log before anything is acknowledged,
// and recovery replays it through the same code paths to land bit-for-bit
// on the pre-crash state: a kill-9'd oasis-server restarted with -wal
// continues the exact proposal sequence (TestCrashRecoveryEndToEnd).
// Background compaction folds cold segments into a manager snapshot plus a
// trimmed tail, and the -fsync policy (per-record / interval / off) sets
// the durability/latency trade-off, measured by BenchmarkCommitDurable.
//
// Pools are shared, not copied. The serving workload is many annotators
// evaluating one candidate-pair pool, so internal/poolstore keeps a
// durable, content-addressed, reference-counted pool registry: a pool is
// uploaded once (POST /v1/pools, JSON or a compact binary columnar format
// with per-section CRC-32C), stored as an immutable fsync'd file named by
// the SHA-256 of its canonical encoding, and any number of sessions
// reference it by poolId — one read-only in-memory copy under a refcount,
// O(1) WAL create records and snapshots (the hash instead of the columns),
// and idle-sweep eviction plus DELETE for unreferenced pools. Inline
// configs are interned into the store transparently, replay resolves the
// hash back through it, and a missing or corrupt pool at recovery is a
// deterministic boot error, never a partial restore
// (TestReplayWithBrokenPoolFailsStop); BenchmarkSessionCreate tracks the
// inline-vs-poolref create cost over a 1M-pair pool.
//
// The service scales across cores by sharding: sessions are independent
// samplers, so the manager splits its session map into power-of-two shards
// (session-ID hash → shard, -shards, default derived from GOMAXPROCS) with
// per-shard locks and create barriers, and the WAL journals each shard to
// its own lane — its own segment stream, append lock and LSN sequence — so
// commit fsyncs only serialise within a shard and recovery replays lanes
// concurrently. Shard count changes which lock and lane serialise a
// session, never what the session does: TestShardedReplayEquivalence holds
// proposal sequences and estimates bit-for-bit identical across 1, 4 and 8
// shards, including through crash recovery. The lane format is WAL record
// version 2 (a shard tag and format version joined the record header, CRC
// covering both); v1 single-stream journals are read-compatible and
// upgraded in place on first open. BenchmarkManagerParallel and
// BenchmarkServerProposeParallel track the multi-worker commit throughput
// scaling with shard count.
//
// # Performance
//
// The draw/commit hot path is amortized O(1) per draw. The instrumental
// distribution v(t) depends only on the Beta posterior and the running
// estimate, which change exactly when a label is committed, so the sampler
// caches v(t) — together with a prepared inverse-CDF stratum sampler and the
// per-stratum importance weights — behind a dirty flag that only
// Commit/Restore set. A ProposeBatch(n) with no intervening commits
// therefore computes v once and pays O(log K) per draw with zero heap
// allocations, instead of the O(K) rebuild-validate-scan per draw of the
// sequential formulation. Equivalence is not approximate: the cached path
// draws bit-for-bit the same sequence as rebuilding v on every call (see
// TestGoldenSequence in internal/core).
//
// ProposeBatch is also rejection-free. Per-stratum proposability accounting
// (one 8-byte slot per pair) resolves every draw in O(1): draws of labelled
// pairs fold their cached label into the estimate immediately (the "free"
// draws of the paper's budget accounting), draws of outstanding pairs queue
// an extra weighted term, and fresh pairs are proposed. When labelled or
// outstanding pairs dominate the drawn strata, the remaining proposals are
// drawn directly from the instrumental distribution restricted to proposable
// pairs (with corrected importance weights), so batches are exactly the
// requested size while supply lasts and exhaustion is the typed ErrExhausted
// rather than a burned retry cap.
//
// The pool read path is zero-copy where the platform allows it. On
// linux/amd64 and linux/arm64 the store serves a pool's scores column
// straight off a read-only memory mapping of the immutable pool file — the
// v2 binary format places the column 8-byte-aligned at offset 24 exactly so
// it can be aliased as []float64 without copying — and the OS page cache,
// not the Go heap, governs residency. Every other platform (and every
// legacy v1 file) falls back to a streaming section-by-section decode
// through one reused 1 MiB buffer; a cross-check test holds the two paths
// byte-identical. Integrity work is paid once per open: the first load of a
// pool verifies the full SHA-256 content address, finiteness and padding,
// while warm reacquires after eviction recheck only the per-section CRCs.
// Stratification is cached in the store entry under the same refcount, so
// concurrent sessions over one pool share the strata instead of re-sorting
// a million scores each (BenchmarkSessionCreate/poolref-warm measures the
// steady-state create). The -pool-mem-budget flag bounds resident bytes
// (heap columns + mappings + cached strata) with an LRU sweep of
// unreferenced pools; referenced pools are pinned, evictions are counted by
// reason in /metrics, and the README's "Memory & zero-copy" section has the
// full platform matrix and gauge guide.
//
// The hot-path microbenchmarks live in internal/core (BenchmarkDraw,
// BenchmarkDrawCommit, BenchmarkInstrumental), the package root
// (BenchmarkProposeBatch/{n=1,64,1024}, BenchmarkProposeCommit),
// internal/server (BenchmarkServerPropose), internal/wal
// (BenchmarkCommitDurable, the WAL durability tax per fsync policy) and
// internal/poolstore (BenchmarkPoolAcquire, cold load via mmap vs decode).
// `make bench-json` runs them and
// appends a labelled run to BENCH_core.json — the perf trajectory every
// change is judged against; `make bench-smoke` is the 1-iteration CI guard.
// The paper-scale experiment benchmarks in bench_test.go are scaled by the
// OASIS_BENCH_SCALE / OASIS_BENCH_RUNS / OASIS_BENCH_SEED environment
// variables, and `make bench-json` honours OASIS_BENCH_LABEL for the run
// label.
//
// The evaluation service is observable end to end: cmd/oasis-server serves
// Prometheus text exposition at GET /metrics (built on the dependency-free
// internal/obs package — atomic counters and fixed-bucket histograms with
// zero hot-path allocations), covering per-route HTTP latency, per-shard
// session lifecycle counters, WAL append/fsync latency and per-lane depth,
// pool-store residency, and per-session sampler health: the running
// F-measure estimate, its delta-method asymptotic variance, and the
// effective-sample-size ratio (Σw)²/(n·Σw²) whose decay toward zero is the
// weight-degeneracy signal OASIS's stratified refresh exists to prevent.
// A Sampler exposes the same diagnostics in-process via Health().
//
// Convergence is a trajectory, not a gauge, so every session also records a
// bounded time-series of estimator state (estimate, asymptotic variance,
// ESS ratio, labels, wall time) on each commit batch into a fixed-capacity
// ring (internal/diag) that deterministically downsamples itself — drop
// every other point, double the stride — so any label budget fits in O(1)
// memory; the series survives snapshots and WAL replay byte-for-byte.
// GET /v1/sessions/{id}/diagnostics serves it as JSON with per-stratum
// weight diagnostics (local ESS, Σw/Σw² moments, realised-vs-instrumental
// allocation skew), GET /debug/dashboard renders every live session as
// inline SVG sparklines with zero external dependencies, and configurable
// ESS-ratio/variance-growth alarms walk a session through
// ok/degraded/degenerate — exported as oasis_sampler_health_state, logged
// once per transition, and stamped on the committing request's trace. A
// Sampler exposes the per-stratum half in-process via StratumDiagnostics,
// and erbench.RunDiagnostics profiles trajectories on the paper datasets.
// Histogram buckets additionally carry OpenMetrics exemplars (the trace ID
// of the bucket's most recent sampled request) when scraped with
// Accept: application/openmetrics-text, linking metric anomalies straight
// to their traces.
//
// Aggregates say that a route is slow; traces say why one request was.
// internal/trace records, for a sampled fraction of requests (-trace-sample,
// or any request carrying a sampled W3C traceparent header), a span
// timeline across all five serving layers — HTTP handling, session
// shard-lock wait/hold, sampler propose/commit with dirty-flag v(t)
// rebuilds, WAL append vs fsync per lane, and pool-store acquire
// (mmap/decode) and strata-cache hits — with zero allocations when a
// request is unsampled. A lock-free ring retains the last N traces plus
// every slow or errored one, served at GET /debug/traces[/{id}]; request
// IDs, trace IDs and access-log lines share one random per-boot prefix,
// and -pprof adds matching goroutine labels (route, shard, lane) so CPU
// profiles attribute along the same dimensions as the spans.
//
// The propose/labels/estimate hot path also speaks a compact binary wire
// protocol (OBP1 — magic, type, length-prefixed payload, CRC-32C trailer,
// the pool codec's framing idiom), negotiated per request via
// Accept / Content-Type: application/x-oasis-bin with JSON as the default
// and the fallback; the server encodes and decodes through pooled buffers
// with zero hot-path allocations, and BenchmarkServerProposeParallel's
// shards=8-bin variant tracks the saving over JSON. The same routes sit
// behind admission control — a global and a per-session token bucket
// (429 + Retry-After) over a bounded in-flight gate with a timed queue
// (503 + X-Shed-Reason) — so overload sheds load in O(1) instead of
// collapsing into unbounded queueing; rejections are counted by reason in
// oasis_http_rejected_total and ops routes are never shed. The README's
// "Wire protocol & overload behavior" section has the frame layout and
// tuning flags.
//
// Every randomised component is seeded explicitly; identical seeds give
// bit-identical runs.
package oasis
