module oasis

go 1.24
