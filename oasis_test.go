package oasis_test

import (
	"fmt"
	"math"
	"testing"

	"oasis"
	"oasis/internal/rng"
)

// syntheticScores builds an imbalanced score/prediction/truth triple with a
// known population F-measure.
func syntheticScores(n int, seed uint64) (scores []float64, preds, truth []bool, trueF float64) {
	r := rng.New(seed)
	scores = make([]float64, n)
	preds = make([]bool, n)
	truth = make([]bool, n)
	var tp, fp, fn float64
	for i := 0; i < n; i++ {
		var s float64
		if r.Bernoulli(0.04) {
			s = 0.4 + 0.6*r.Float64()
		} else {
			s = 0.35 * r.Float64()
		}
		scores[i] = s
		preds[i] = s > 0.6
		truth[i] = r.Bernoulli(s)
		switch {
		case truth[i] && preds[i]:
			tp++
		case !truth[i] && preds[i]:
			fp++
		case truth[i] && !preds[i]:
			fn++
		}
	}
	den := 0.5*(tp+fp) + 0.5*(tp+fn)
	trueF = tp / den
	return scores, preds, truth, trueF
}

func TestNewPoolValidation(t *testing.T) {
	if _, err := oasis.NewPool([]float64{1, 2}, []bool{true}, oasis.UncalibratedScores); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := oasis.NewPool(nil, nil, oasis.CalibratedScores); err == nil {
		t.Error("expected empty-pool error")
	}
	p, err := oasis.NewPool([]float64{0.1, 0.9}, []bool{false, true}, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.NumPredPositives() != 1 {
		t.Errorf("pool stats %d/%d", p.N(), p.NumPredPositives())
	}
}

func TestNewPoolCopiesInputs(t *testing.T) {
	scores := []float64{0.1, 0.9}
	preds := []bool{false, true}
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	scores[0] = 123 // caller mutation must not affect the pool
	if p.Internal().Scores[0] == 123 {
		t.Error("pool aliases caller slice")
	}
}

func TestSamplerEndToEnd(t *testing.T) {
	scores, preds, truth, trueF := syntheticScores(20000, 1)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := oasis.NewSampler(p, oasis.Options{Strata: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.K() < 2 {
		t.Fatalf("K = %d", s.K())
	}
	if f0 := s.InitialEstimate(); f0 < 0 || f0 > 1 || math.IsNaN(f0) {
		t.Fatalf("initial estimate %v", f0)
	}
	res, err := s.Run(func(i int) bool { return truth[i] }, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsConsumed != 1500 {
		t.Errorf("labels consumed %d", res.LabelsConsumed)
	}
	if res.Iterations < res.LabelsConsumed {
		t.Errorf("iterations %d below labels %d", res.Iterations, res.LabelsConsumed)
	}
	if math.Abs(res.FMeasure-trueF) > 0.08 {
		t.Errorf("estimate %v, true %v", res.FMeasure, trueF)
	}
}

func TestUncalibratedPoolWorks(t *testing.T) {
	scores, preds, truth, trueF := syntheticScores(10000, 3)
	margins := make([]float64, len(scores))
	for i, s := range scores {
		margins[i] = 6 * (s - 0.6) // margin-like transform, threshold 0
	}
	p, err := oasis.NewPool(margins, preds, oasis.UncalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := oasis.NewSampler(p, oasis.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(func(i int) bool { return truth[i] }, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FMeasure-trueF) > 0.1 {
		t.Errorf("uncalibrated estimate %v, true %v", res.FMeasure, trueF)
	}
}

func TestBaselinesRun(t *testing.T) {
	scores, preds, truth, trueF := syntheticScores(8000, 5)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	type builder func() (*oasis.Method, error)
	builders := map[string]builder{
		"passive": func() (*oasis.Method, error) {
			return oasis.NewPassiveSampler(p, oasis.Options{Seed: 6})
		},
		"stratified": func() (*oasis.Method, error) {
			return oasis.NewStratifiedSampler(p, oasis.Options{Seed: 7})
		},
		"is": func() (*oasis.Method, error) {
			return oasis.NewISSampler(p, oasis.Options{Seed: 8})
		},
	}
	for name, build := range builders {
		m, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
		res, err := m.Run(func(i int) bool { return truth[i] }, 3000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(res.FMeasure) {
			t.Errorf("%s: undefined estimate after 3000 labels", name)
			continue
		}
		if math.Abs(res.FMeasure-trueF) > 0.15 {
			t.Errorf("%s: estimate %v, true %v", name, res.FMeasure, trueF)
		}
	}
}

func TestRecallOption(t *testing.T) {
	scores, preds, truth, _ := syntheticScores(10000, 9)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	// True recall from ground truth.
	var tp, fn float64
	for i := range truth {
		if truth[i] && preds[i] {
			tp++
		}
		if truth[i] && !preds[i] {
			fn++
		}
	}
	trueRecall := tp / (tp + fn)
	s, err := oasis.NewSampler(p, oasis.Options{Recall: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(func(i int) bool { return truth[i] }, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FMeasure-trueRecall) > 0.1 {
		t.Errorf("recall estimate %v, true %v", res.FMeasure, trueRecall)
	}
}

func TestPrecisionOption(t *testing.T) {
	scores, preds, truth, _ := syntheticScores(10000, 11)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp float64
	for i := range truth {
		if truth[i] && preds[i] {
			tp++
		}
		if !truth[i] && preds[i] {
			fp++
		}
	}
	truePrec := tp / (tp + fp)
	s, err := oasis.NewSampler(p, oasis.Options{Alpha: 1, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(func(i int) bool { return truth[i] }, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FMeasure-truePrec) > 0.1 {
		t.Errorf("precision estimate %v, true %v", res.FMeasure, truePrec)
	}
}

func TestEqualSizeStratifierOption(t *testing.T) {
	scores, preds, truth, trueF := syntheticScores(10000, 13)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := oasis.NewSampler(p, oasis.Options{
		Stratifier: oasis.EqualSizeStratifier, Strata: 25, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 25 {
		t.Errorf("equal-size K = %d", s.K())
	}
	res, err := s.Run(func(i int) bool { return truth[i] }, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FMeasure-trueF) > 0.1 {
		t.Errorf("equal-size estimate %v, true %v", res.FMeasure, trueF)
	}
}

func TestStepAPI(t *testing.T) {
	scores, preds, truth, _ := syntheticScores(2000, 15)
	p, err := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := oasis.NewSampler(p, oasis.Options{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	b := oasis.NewBudgeted(func(i int) bool { return truth[i] }, 10)
	for !b.Exhausted() {
		if err := s.Step(b); err != nil {
			if err == oasis.ErrBudgetExhausted {
				break
			}
			t.Fatal(err)
		}
	}
	if b.Consumed() != 10 {
		t.Errorf("consumed %d", b.Consumed())
	}
	if math.IsNaN(s.Estimate()) {
		t.Error("estimate should fall back to initial guess")
	}
}

func TestRunRejectsBadBudget(t *testing.T) {
	scores, preds, _, _ := syntheticScores(100, 17)
	p, _ := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	s, err := oasis.NewSampler(p, oasis.Options{Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(func(int) bool { return false }, 0); err == nil {
		t.Error("expected error on zero budget")
	}
}

func TestAsMethod(t *testing.T) {
	scores, preds, truth, _ := syntheticScores(3000, 19)
	p, _ := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	s, err := oasis.NewSampler(p, oasis.Options{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	m := s.AsMethod()
	if m.Name() != "OASIS" {
		t.Errorf("name %q", m.Name())
	}
	if _, err := m.Run(func(i int) bool { return truth[i] }, 50); err != nil {
		t.Fatal(err)
	}
}

// ExampleSampler demonstrates the quickstart flow on synthetic scores.
func ExampleSampler() {
	// Scores and predictions from an ER system; ground truth via an oracle.
	scores := []float64{0.95, 0.9, 0.85, 0.2, 0.15, 0.1, 0.05, 0.03}
	preds := []bool{true, true, true, false, false, false, false, false}
	truth := []bool{true, true, false, false, false, false, false, false}

	p, _ := oasis.NewPool(scores, preds, oasis.CalibratedScores)
	s, _ := oasis.NewSampler(p, oasis.Options{Strata: 3, Seed: 42})
	res, _ := s.Run(func(i int) bool { return truth[i] }, len(scores))
	fmt.Printf("labels=%d F in [0,1]: %v\n", res.LabelsConsumed, res.FMeasure >= 0 && res.FMeasure <= 1)
	// Output: labels=8 F in [0,1]: true
}
